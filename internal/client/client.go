// Package client is the Go client for the LDC server: a thin RESP2
// connection with explicit pipelining. Do issues one command per round
// trip; Pipeline queues many commands and flushes them in a single write,
// which the server turns into one engine batch per burst of writes — the
// intended high-throughput path.
//
// A Client is safe for concurrent use; commands and pipelines are
// serialized over the single connection. For connection-level parallelism
// open several clients.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/resp"
)

// ErrNil reports a missing key (the RESP null bulk reply).
var ErrNil = errors.New("client: nil reply")

// Client is one connection to the server.
type Client struct {
	//ldclint:lockrank client.client.mu 12
	mu sync.Mutex
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer

	cmdBuf []byte // reused command encoding buffer
}

// Dial connects to a server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}, nil
}

// Close tears the connection down. The socket is closed outside c.mu so a
// goroutine blocked in Do on a dead peer is unwedged rather than waited for;
// its pending read fails with "use of closed network connection".
func (c *Client) Close() error {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	return nc.Close()
}

// Do sends one command and returns its reply: string (simple status),
// int64, []byte (bulk; nil for missing), or []interface{} (array). A
// server error reply is returned as the error (type resp.Error); transport
// failures surface as ordinary errors.
func (c *Client) Do(args ...interface{}) (interface{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.send(args...); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.receive()
}

// send encodes one command into the connection's write buffer.
func (c *Client) send(args ...interface{}) error {
	var err error
	c.cmdBuf, err = resp.AppendCommand(c.cmdBuf[:0], args...)
	if err != nil {
		return err
	}
	c.w.Raw(c.cmdBuf)
	return nil
}

// receive reads one reply, converting a server error reply into err.
// Cluster MOVED redirects decode into *MovedError so callers can follow
// them.
func (c *Client) receive() (interface{}, error) {
	v, err := c.r.ReadReply()
	if err != nil {
		return nil, err
	}
	if e, ok := v.(resp.Error); ok {
		return nil, parseMoved(e)
	}
	return v, nil
}

// ---------------------------------------------------------------------------
// Typed conveniences

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if s, ok := v.(string); !ok || s != "PONG" {
		return fmt.Errorf("client: unexpected PING reply %v", v)
	}
	return nil
}

// Set stores key → value.
func (c *Client) Set(key, value []byte) error {
	_, err := c.Do("SET", key, value)
	return err
}

// Get fetches a key's value; ErrNil reports a missing key.
func (c *Client) Get(key []byte) ([]byte, error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return nil, err
	}
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("client: unexpected GET reply %T", v)
	}
	if b == nil {
		return nil, ErrNil
	}
	return b, nil
}

// Del deletes keys, returning the server's count.
func (c *Client) Del(keys ...[]byte) (int64, error) {
	args := make([]interface{}, 0, len(keys)+1)
	args = append(args, "DEL")
	for _, k := range keys {
		args = append(args, k)
	}
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("client: unexpected DEL reply %T", v)
	}
	return n, nil
}

// MGet fetches several keys; missing keys yield nil entries.
func (c *Client) MGet(keys ...[]byte) ([][]byte, error) {
	args := make([]interface{}, 0, len(keys)+1)
	args = append(args, "MGET")
	for _, k := range keys {
		args = append(args, k)
	}
	v, err := c.Do(args...)
	if err != nil {
		return nil, err
	}
	arr, ok := v.([]interface{})
	if !ok {
		return nil, fmt.Errorf("client: unexpected MGET reply %T", v)
	}
	out := make([][]byte, len(arr))
	for i, e := range arr {
		out[i], _ = e.([]byte)
	}
	return out, nil
}

// Scan fetches one SCAN page: keys from cursor ("0" = start), plus the
// next cursor ("0" = exhausted).
func (c *Client) Scan(cursor []byte, count int) (next []byte, keys [][]byte, err error) {
	v, err := c.Do("SCAN", cursor, "COUNT", count)
	if err != nil {
		return nil, nil, err
	}
	arr, ok := v.([]interface{})
	if !ok || len(arr) != 2 {
		return nil, nil, fmt.Errorf("client: unexpected SCAN reply %v", v)
	}
	next, _ = arr[0].([]byte)
	page, _ := arr[1].([]interface{})
	keys = make([][]byte, 0, len(page))
	for _, e := range page {
		if k, ok := e.([]byte); ok {
			keys = append(keys, k)
		}
	}
	return next, keys, nil
}

// Info fetches the INFO text (optionally one section).
func (c *Client) Info(section string) (string, error) {
	var (
		v   interface{}
		err error
	)
	if section == "" {
		v, err = c.Do("INFO")
	} else {
		v, err = c.Do("INFO", section)
	}
	if err != nil {
		return "", err
	}
	b, ok := v.([]byte)
	if !ok {
		return "", fmt.Errorf("client: unexpected INFO reply %T", v)
	}
	return string(b), nil
}

// DBSize reports the number of live keys.
func (c *Client) DBSize() (int64, error) {
	v, err := c.Do("DBSIZE")
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("client: unexpected DBSIZE reply %T", v)
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Pipeline

// Pipeline queues commands for one flush-and-read round trip. Build with
// Client.Pipeline, fill with Do, run with Exec. Not safe for concurrent
// use; the client connection is locked only inside Exec.
type Pipeline struct {
	c   *Client
	buf []byte
	n   int
	err error
}

// Pipeline starts an empty pipeline.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c}
}

// Do queues one command. Encoding errors are latched and surfaced by Exec.
func (p *Pipeline) Do(args ...interface{}) {
	if p.err != nil {
		return
	}
	p.buf, p.err = resp.AppendCommand(p.buf, args...)
	if p.err == nil {
		p.n++
	}
}

// Len reports the number of queued commands.
func (p *Pipeline) Len() int { return p.n }

// Exec writes every queued command in one burst and reads every reply.
// The replies slice is positional; server error replies appear as
// resp.Error values at their position (Exec's own error covers transport
// failures only). The pipeline is reset and reusable afterwards.
func (p *Pipeline) Exec() ([]interface{}, error) {
	if p.err != nil {
		err := p.err
		p.buf, p.n, p.err = p.buf[:0], 0, nil
		return nil, err
	}
	if p.n == 0 {
		return nil, nil
	}
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Raw(p.buf)
	n := p.n
	p.buf, p.n = p.buf[:0], 0
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]interface{}, 0, n)
	for i := 0; i < n; i++ {
		v, err := c.r.ReadReply()
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
	return out, nil
}
