// Package ldc is the public API of the LDC key-value store: a complete
// LSM-tree storage engine (memtable + WAL + SSTables + leveled compaction,
// LevelDB-compatible semantics) implementing the Lower-level Driven
// Compaction method of Chai et al., "LDC: A Lower-Level Driven Compaction
// Method to Optimize SSD-Oriented Key-Value Stores" (ICDE 2019), alongside
// the traditional upper-level driven baseline and a size-tiered lazy
// policy.
//
// Quick start:
//
//	db, err := ldc.Open("/tmp/mydb", &ldc.Options{Policy: ldc.PolicyLDC})
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	pairs, err := db.Scan([]byte("a"), 100)
//
// Choosing a policy:
//
//   - PolicyLDC (the paper's contribution) splits each compaction into a
//     metadata-only link phase and a lower-level-driven merge phase,
//     roughly halving compaction I/O and cutting write tail latency — the
//     right default on SSDs.
//   - PolicyUDC is the classic LevelDB behaviour, kept as the baseline.
//   - PolicyTiered is a size-tiered lazy scheme that trades write
//     amplification for large bursts; it demonstrates the motivation of
//     the paper and is not recommended for latency-sensitive use.
//
// Scaling out on one machine:
//
// Options.Shards splits the store into N hash-partitioned engine
// instances behind the same DB — each shard has its own memtable, WAL
// segment, and compaction pipeline, so concurrent writers overlap each
// other's flush and compaction stalls instead of queuing behind one
// engine. Point operations route by key hash; Scan and NewIterator merge
// all shards back into one sorted keyspace. Shards=1 (the default) is
// byte-identical to the classic single-engine layout. See DESIGN.md
// ("Sharding") for the cross-shard batch-visibility caveat.
//
// Bounding tail latency:
//
// Options.CompactionRateBytesPerSec paces background table writes through
// a shared token-bucket scheduler with strict priority (flushes, then
// L0→L1 compactions, then LDC merges) and per-tier anti-starvation aging
// bounds, and foreground write admission slows continuously with L0 depth
// and compaction debt rather than at a cliff. Stats reports full
// read/write latency percentile ladders plus the scheduler's counters.
// See DESIGN.md ("I/O scheduling").
//
// Separating large values:
//
// Options.BlobThreshold moves values at or above the threshold into a
// segmented append-only value log (WiscKey-style), leaving a 20-byte
// pointer in the tree — compaction rewrites pointers, not payloads. Log
// garbage collection is driven by compaction's own dead-byte accounting
// and relocates live records through the normal commit pipeline, guarded
// so concurrent overwrites always win. The default (0) disables
// separation and keeps the on-disk layout byte-identical to prior
// versions. See DESIGN.md ("Value separation").
//
// For experiments, an SSD simulator with asymmetric read/write timing and
// per-category I/O accounting is available via NewSimulatedSSD.
package ldc

import (
	"repro/internal/batch"
	"repro/internal/checksum"
	"repro/internal/compaction"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/ssdsim"
	"repro/internal/vfs"
)

// DB is the key-value store handle. All methods are safe for concurrent
// use. See core.DB for the full method set: Put, Get, Delete, Apply,
// Scan, NewIterator, NewSnapshot, Stats, CurrentProfile, Close, …
type DB = core.DB

// Options configures Open. The zero value gives a LevelDB-like store
// (UDC policy, 4 MiB memtable, 2 MiB tables, fan-out 10, 10-bit Bloom
// filters) on the operating-system filesystem.
type Options = core.Options

// Stats is a snapshot of store counters: I/O volumes by purpose,
// compaction/link/merge counts, stall time, and write amplification.
type Stats = core.Stats

// Profile describes the tree's current shape (files and bytes per level,
// LDC frozen-region size, current SliceLink threshold).
type Profile = core.Profile

// Snapshot pins a point-in-time view for reads and iterators.
type Snapshot = core.Snapshot

// Iterator walks user keys in order, newest visible version of each,
// skipping deletions.
type Iterator = core.Iterator

// KV is a key/value pair returned by Scan.
type KV = core.KV

// Batch collects Set/Delete operations for atomic application via
// DB.Apply.
type Batch = batch.Batch

// Policy selects the compaction algorithm.
type Policy = compaction.Policy

// Compaction policies.
const (
	// PolicyUDC is traditional upper-level driven compaction (LevelDB).
	PolicyUDC = compaction.UDC
	// PolicyLDC is the paper's lower-level driven compaction.
	PolicyLDC = compaction.LDC
	// PolicyTiered is a size-tiered lazy baseline.
	PolicyTiered = compaction.Tiered
)

// Compression selects the per-block codec for newly written tables
// (Options.Compression). Incompressible blocks are stored raw regardless,
// and a reopened store reads tables written with any codec.
type Compression = compress.Kind

// Block codecs.
const (
	// CompressionNone stores blocks raw (the default).
	CompressionNone = compress.None
	// CompressionFlate is stdlib DEFLATE at BestSpeed — densest.
	CompressionFlate = compress.Flate
	// CompressionLZ4 is a from-scratch LZ4-class codec — fastest.
	CompressionLZ4 = compress.LZ4
)

// ChecksumKind selects the per-table block checksum
// (Options.ChecksumKind); the choice is recorded in each table's footer,
// so mixed trees verify correctly.
type ChecksumKind = checksum.Kind

// Block checksum kinds.
const (
	// ChecksumCRC32C is crc32 (Castagnoli), the default.
	ChecksumCRC32C = checksum.CRC32C
	// ChecksumXXH3 is a from-scratch XXH-family 64→32-bit hash.
	ChecksumXXH3 = checksum.XXH3
)

// Errors re-exported from the engine.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = core.ErrNotFound
	// ErrClosed reports use after Close.
	ErrClosed = core.ErrClosed
)

// Comparer orders user keys; BytewiseComparer is the default.
type Comparer = keys.Comparer

// BytewiseComparer orders keys lexicographically.
type BytewiseComparer = keys.BytewiseComparer

// FS abstracts the filesystem under the store.
type FS = vfs.FS

// Open opens (creating if necessary) a database in dir. A nil opts uses
// defaults.
func Open(dir string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	return core.Open(dir, o)
}

// NewBatch returns an empty write batch.
func NewBatch() *Batch { return batch.New() }

// MemFS returns an in-memory filesystem, useful for tests and experiments.
func MemFS() FS { return vfs.Mem() }

// OSFS returns the real filesystem (the default).
func OSFS() FS { return vfs.OS() }

// SSD is the simulated flash device; its Snapshot method reports
// per-category I/O counters, total device busy time, and consumed erase
// cycles.
type SSD = ssdsim.Device

// SSDProfile describes simulated device timing.
type SSDProfile = ssdsim.Profile

// DefaultSSDProfile models an enterprise PCIe SSD with the ~10×
// read/write asymmetry the paper targets.
func DefaultSSDProfile() SSDProfile { return ssdsim.DefaultProfile() }

// NewSimulatedSSD wraps a filesystem with a simulated SSD so that all
// store I/O is timed and accounted. Pass the returned FS as Options.FS;
// the returned device exposes the counters.
func NewSimulatedSSD(inner FS, profile SSDProfile) (FS, *SSD) {
	dev := ssdsim.NewDevice(profile)
	return ssdsim.Wrap(inner, dev), dev
}
