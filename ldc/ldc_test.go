package ldc_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/ldc"
)

// These tests exercise the public API surface exactly as a downstream user
// would, on every policy.

func openMem(t *testing.T, policy ldc.Policy) *ldc.DB {
	t.Helper()
	db, err := ldc.Open("/db", &ldc.Options{
		FS:           ldc.MemFS(),
		Policy:       policy,
		MemTableSize: 16 << 10,
		SSTableSize:  16 << 10,
		Fanout:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIBasics(t *testing.T) {
	for _, policy := range []ldc.Policy{ldc.PolicyUDC, ldc.PolicyLDC, ldc.PolicyTiered} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openMem(t, policy)
			defer db.Close()

			if err := db.Put([]byte("hello"), []byte("world")); err != nil {
				t.Fatal(err)
			}
			v, err := db.Get([]byte("hello"))
			if err != nil || string(v) != "world" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if _, err := db.Get([]byte("missing")); !errors.Is(err, ldc.ErrNotFound) {
				t.Fatalf("missing key: %v", err)
			}
			if err := db.Delete([]byte("hello")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("hello")); !errors.Is(err, ldc.ErrNotFound) {
				t.Fatalf("deleted key: %v", err)
			}
		})
	}
}

func TestPublicBatchAndScan(t *testing.T) {
	db := openMem(t, ldc.PolicyLDC)
	defer db.Close()

	b := ldc.NewBatch()
	for i := 0; i < 10; i++ {
		b.Set([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	pairs, err := db.Scan([]byte("k03"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 || string(pairs[0].Key) != "k03" || string(pairs[3].Key) != "k06" {
		t.Fatalf("Scan = %v", pairs)
	}
}

func TestPublicIteratorAndSnapshot(t *testing.T) {
	db := openMem(t, ldc.PolicyLDC)
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	db.Put([]byte("a"), []byte("2"))
	db.Put([]byte("b"), []byte("3"))

	it, err := db.NewIterator(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "a" || string(it.Value()) != "1" {
		t.Fatalf("snapshot iterator: %q=%q", it.Key(), it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Fatal("snapshot iterator sees post-snapshot key")
	}
}

func TestPublicStatsAndProfile(t *testing.T) {
	db := openMem(t, ldc.PolicyLDC)
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i%1000)), make([]byte, 64))
	}
	db.CompactRange()
	s := db.Stats()
	if s.Puts != 3000 || s.FlushCount == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.WriteAmplification() <= 1 {
		t.Errorf("write amp = %.2f", s.WriteAmplification())
	}
	prof := db.CurrentProfile()
	if len(prof.Levels) == 0 || prof.SliceThreshold == 0 {
		t.Errorf("profile = %+v", prof)
	}
}

func TestPublicSimulatedSSD(t *testing.T) {
	p := ldc.DefaultSSDProfile()
	p.Scale = 0
	fs, dev := ldc.NewSimulatedSSD(ldc.MemFS(), p)
	db, err := ldc.Open("/db", &ldc.Options{FS: fs, MemTableSize: 8 << 10, SSTableSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 100))
	}
	db.CompactRange()
	stats := dev.Snapshot()
	if stats.Totals().WriteBytes == 0 {
		t.Error("simulated device recorded no writes")
	}
	if stats.FlushWrite() == 0 {
		t.Error("no flush-category writes recorded")
	}
}

// TestPublicSharded exercises the sharded facade through the public API:
// routing, cross-shard scan merge, persistence across reopen, and the
// aggregated Stats view.
func TestPublicSharded(t *testing.T) {
	fs := ldc.MemFS()
	opts := &ldc.Options{
		FS:           fs,
		Policy:       ldc.PolicyLDC,
		MemTableSize: 16 << 10,
		SSTableSize:  16 << 10,
		Fanout:       4,
		Shards:       4,
	}
	db, err := ldc.Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}

	const n = 400
	b := ldc.NewBatch()
	for i := 0; i < n; i++ {
		b.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	pairs, err := db.Scan(nil, n+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("Scan over 4 shards returned %d keys, want %d", len(pairs), n)
	}
	for i, kv := range pairs {
		if want := fmt.Sprintf("k%04d", i); string(kv.Key) != want {
			t.Fatalf("Scan[%d] = %q, want %q (merge order broken)", i, kv.Key, want)
		}
	}
	// The batch fanned out: every shard committed a sub-batch, and the
	// aggregated Stats fold those per-shard counters together.
	if s := db.Stats(); s.WriteBatchesTotal < 4 || s.UserWriteBytes == 0 {
		t.Errorf("aggregated Stats = batches %d, user bytes %d; want fan-out across 4 shards",
			s.WriteBatchesTotal, s.UserWriteBytes)
	}
	db.Close()

	// Shards=0 adopts the on-disk partitioning.
	reopened, err := ldc.Open("/db", &ldc.Options{FS: fs, Policy: ldc.PolicyLDC})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.NumShards(); got != 4 {
		t.Fatalf("reopen NumShards = %d, want 4", got)
	}
	v, err := reopened.Get([]byte("k0123"))
	if err != nil || string(v) != "v123" {
		t.Fatalf("after sharded reopen: %q, %v", v, err)
	}
}

func TestPublicPersistence(t *testing.T) {
	fs := ldc.MemFS()
	opts := &ldc.Options{FS: fs, Policy: ldc.PolicyLDC, MemTableSize: 8 << 10, SSTableSize: 8 << 10}
	db, err := ldc.Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Close()

	db2, err := ldc.Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("k0123"))
	if err != nil || string(v) != "v123" {
		t.Fatalf("after reopen: %q, %v", v, err)
	}
}
