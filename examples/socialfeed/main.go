// Socialfeed simulates the paper's motivating application class: an online
// social-network timeline with a high write proportion (posts) mixed with
// feed reads (range scans), running on a simulated SSD. It runs the same
// workload under the traditional compaction (UDC) and the paper's LDC, and
// prints throughput, tail latency, and compaction I/O side by side —
// a miniature of the paper's Figs 8 and 10.
//
// Run with:
//
//	go run ./examples/socialfeed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/histogram"
	"repro/ldc"
)

const (
	users    = 4000
	posts    = 60000
	feedLen  = 20
	postSize = 1024
)

// postKey orders a user's posts newest-last so a feed read is one short
// forward scan from the user's key prefix.
func postKey(user, seq int) []byte {
	return []byte(fmt.Sprintf("feed/%05d/%010d", user, seq))
}

func runPolicy(policy ldc.Policy) (thr float64, p999 time.Duration, compMB int64) {
	profile := ldc.DefaultSSDProfile()
	fs, _ := ldc.NewSimulatedSSD(ldc.MemFS(), profile)
	db, err := ldc.Open("/feed", &ldc.Options{
		FS:           fs,
		Policy:       policy,
		MemTableSize: 256 << 10,
		SSTableSize:  256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	var hist histogram.Histogram
	body := make([]byte, postSize)
	start := time.Now()
	ops := 0
	for i := 0; i < posts; i++ {
		u := rng.Intn(users)
		opStart := time.Now()
		// 70% posts, 30% feed reads — the paper's write-heavy mix.
		if rng.Float64() < 0.7 {
			if err := db.Put(postKey(u, i), body); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := db.Scan([]byte(fmt.Sprintf("feed/%05d/", u)), feedLen); err != nil {
				log.Fatal(err)
			}
		}
		hist.Record(time.Since(opStart))
		ops++
	}
	elapsed := time.Since(start)
	s := db.Stats()
	return float64(ops) / elapsed.Seconds(),
		hist.Percentile(99.9),
		(s.CompactionReadBytes + s.CompactionWriteBytes) >> 20
}

func main() {
	fmt.Printf("social feed: %d requests (70%% posts / 30%% feed scans), %d users\n\n", posts, users)
	type row struct {
		name   string
		policy ldc.Policy
	}
	var results []string
	for _, r := range []row{{"UDC (traditional)", ldc.PolicyUDC}, {"LDC (paper)", ldc.PolicyLDC}} {
		thr, p999, compMB := runPolicy(r.policy)
		results = append(results, fmt.Sprintf("%-18s %8.0f req/s   P99.9=%-12v compactionIO=%dMB",
			r.name, thr, p999, compMB))
	}
	for _, line := range results {
		fmt.Println(line)
	}
	fmt.Println("\nLDC should show higher throughput, a much lower P99.9, and roughly half the compaction I/O.")
}
