// Quickstart: open a store with the LDC compaction policy, write, read,
// scan, batch, snapshot, and inspect the engine's statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/ldc"
)

func main() {
	dir, err := os.MkdirTemp("", "ldc-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open with the paper's lower-level driven compaction enabled.
	db, err := ldc.Open(dir, &ldc.Options{Policy: ldc.PolicyLDC})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Point writes and reads.
	if err := db.Put([]byte("greeting"), []byte("hello, LSM world")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %s\n", v)

	// Atomic batches.
	b := ldc.NewBatch()
	for i := 0; i < 100; i++ {
		b.Set([]byte(fmt.Sprintf("user:%04d", i)), []byte(fmt.Sprintf("profile-%d", i)))
	}
	b.Delete([]byte("greeting"))
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}

	// Range scans (sorted by key).
	pairs, err := db.Scan([]byte("user:0040"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("five users from user:0040:")
	for _, kv := range pairs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Snapshots give repeatable reads.
	snap, err := db.NewSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	db.Put([]byte("user:0040"), []byte("updated"))
	old, _ := db.GetAt([]byte("user:0040"), snap)
	cur, _ := db.Get([]byte("user:0040"))
	fmt.Printf("user:0040 at snapshot: %s, now: %s\n", old, cur)
	snap.Release()

	// Engine statistics.
	s := db.Stats()
	fmt.Printf("stats: puts=%d gets=%d flushes=%d links=%d merges=%d write-amp=%.2f\n",
		s.Puts, s.Gets, s.FlushCount, s.LinkCount, s.MergeCount, s.WriteAmplification())
}
