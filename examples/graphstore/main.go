// Graphstore stores a directed graph as adjacency lists in the LDC
// key-value store — the graph-processing use case the paper's introduction
// motivates. Edges are keys "e/<src>/<dst>" so a vertex's out-neighbours
// are one contiguous range scan; vertex properties live under "v/<id>".
// The example ingests a random graph, runs breadth-first search over the
// stored adjacency lists, and mutates the graph concurrently with reads.
//
// Run with:
//
//	go run ./examples/graphstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro/ldc"
)

const (
	vertices    = 5000
	avgOutDeg   = 8
	bfsSources  = 5
	deleteBatch = 2000
)

func edgeKey(src, dst int) []byte {
	return []byte(fmt.Sprintf("e/%06d/%06d", src, dst))
}

func edgePrefix(src int) []byte {
	return []byte(fmt.Sprintf("e/%06d/", src))
}

func vertexKey(id int) []byte {
	return []byte(fmt.Sprintf("v/%06d", id))
}

// neighbours scans the adjacency range of src.
func neighbours(db *ldc.DB, src int) ([]int, error) {
	prefix := string(edgePrefix(src))
	pairs, err := db.Scan([]byte(prefix), avgOutDeg*8)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, kv := range pairs {
		k := string(kv.Key)
		if !strings.HasPrefix(k, prefix) {
			break
		}
		var dst int
		fmt.Sscanf(k[len(prefix):], "%d", &dst)
		out = append(out, dst)
	}
	return out, nil
}

// bfs runs breadth-first search from src over the stored graph, returning
// the number of reached vertices and the maximum depth.
func bfs(db *ldc.DB, src int) (reached, depth int, err error) {
	visited := map[int]bool{src: true}
	frontier := []int{src}
	for len(frontier) > 0 && depth < 6 {
		var next []int
		for _, v := range frontier {
			ns, err := neighbours(db, v)
			if err != nil {
				return 0, 0, err
			}
			for _, n := range ns {
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
		if len(frontier) > 0 {
			depth++
		}
	}
	return len(visited), depth, nil
}

func main() {
	fs, dev := ldc.NewSimulatedSSD(ldc.MemFS(), ldc.DefaultSSDProfile())
	db, err := ldc.Open("/graph", &ldc.Options{
		FS:           fs,
		Policy:       ldc.PolicyLDC,
		MemTableSize: 256 << 10,
		SSTableSize:  256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest: vertices then edges, batched for atomicity per vertex.
	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	edges := 0
	for v := 0; v < vertices; v++ {
		b := ldc.NewBatch()
		b.Set(vertexKey(v), []byte(fmt.Sprintf(`{"id":%d}`, v)))
		deg := 1 + rng.Intn(2*avgOutDeg)
		for e := 0; e < deg; e++ {
			b.Set(edgeKey(v, rng.Intn(vertices)), []byte("w=1"))
			edges++
		}
		if err := db.Apply(b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d vertices, %d edges in %v\n", vertices, edges, time.Since(start).Round(time.Millisecond))

	// Traversals over the persistent adjacency lists.
	for i := 0; i < bfsSources; i++ {
		src := rng.Intn(vertices)
		t := time.Now()
		reached, depth, err := bfs(db, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bfs from %06d: reached %d vertices (depth %d) in %v\n",
			src, reached, depth, time.Since(t).Round(time.Millisecond))
	}

	// Mutate: retract random edges in batches, then re-query.
	b := ldc.NewBatch()
	for i := 0; i < deleteBatch; i++ {
		b.Delete(edgeKey(rng.Intn(vertices), rng.Intn(vertices)))
	}
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}
	ns, err := neighbours(db, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex 0 now has %d out-neighbours\n", len(ns))

	s := db.Stats()
	d := dev.Snapshot()
	fmt.Printf("engine: flushes=%d links=%d merges=%d write-amp=%.2f device-writes=%dMB erase-cycles=%d\n",
		s.FlushCount, s.LinkCount, s.MergeCount, s.WriteAmplification(),
		d.Totals().WriteBytes>>20, d.EraseCycles)
}
