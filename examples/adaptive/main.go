// Adaptive demonstrates the paper's §III-B-4 self-adaptive SliceLink
// threshold: under a write-dominated phase the store raises T_s (bigger
// merge batches, less write amplification); when the workload turns
// read-dominated it lowers T_s (fewer linked slices to probe per read).
// The example alternates phases and prints the threshold as it moves.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/ldc"
)

const (
	keySpace = 20000
	phaseOps = 30000
)

func main() {
	profile := ldc.DefaultSSDProfile()
	profile.Scale = 0 // accounting only; this example is about the controller
	fs, _ := ldc.NewSimulatedSSD(ldc.MemFS(), profile)
	db, err := ldc.Open("/adaptive", &ldc.Options{
		FS:                 fs,
		Policy:             ldc.PolicyLDC,
		MemTableSize:       128 << 10,
		SSTableSize:        128 << 10,
		Fanout:             8,
		SliceLinkThreshold: 8,
		AdaptiveThreshold:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(1))
	key := func() []byte { return []byte(fmt.Sprintf("u%015d", rng.Intn(keySpace))) }
	value := make([]byte, 256)

	fmt.Printf("initial SliceLink threshold T_s = %d (fan-out 8)\n\n", db.SliceThreshold())

	phases := []struct {
		name       string
		writeRatio float64
	}{
		{"write-dominated (90% writes)", 0.9},
		{"read-dominated (10% writes)", 0.1},
		{"write-dominated again (90% writes)", 0.9},
	}
	for _, ph := range phases {
		for i := 0; i < phaseOps; i++ {
			if rng.Float64() < ph.writeRatio {
				if err := db.Put(key(), value); err != nil {
					log.Fatal(err)
				}
			} else if _, err := db.Get(key()); err != nil && err != ldc.ErrNotFound {
				log.Fatal(err)
			}
		}
		fmt.Printf("after %-36s T_s = %d\n", ph.name+":", db.SliceThreshold())
	}

	s := db.Stats()
	fmt.Printf("\nengine: links=%d merges=%d write-amp=%.2f\n",
		s.LinkCount, s.MergeCount, s.WriteAmplification())
	fmt.Println("T_s should rise in write phases and fall in the read phase.")
}
