GO ?= go

# Build-tag and flag threading: every test/bench target honors TAGS and
# GOFLAGS, so modes compose — `make race TAGS=invariants` runs the race
# detector with the runtime assertion layer live, `make test GOFLAGS=-v`
# works as expected. TAGS is a space-separated tag list.
TAGS ?=
GOFLAGS ?=
TAGFLAGS := $(if $(TAGS),-tags '$(TAGS)')
TESTFLAGS := $(TAGFLAGS) $(GOFLAGS)

# make exports command-line variables into the recipe environment, and the go
# tool parses a GOFLAGS *environment* variable itself (rejecting "-run X"
# space-separated form). Keep both out of the environment so the explicit
# $(TESTFLAGS) splice above is the only channel.
unexport GOFLAGS
unexport TAGS

# ldclint is the repo's custom vettool (tools/ldclint): five analyzers that
# machine-check the engine's concurrency invariants (I/O under mutex,
# unbalanced refcounts, mixed atomic/plain field access, dropped errors from
# durability-critical Close/Sync, and whole-program lock acquisition order
# against the //ldclint:lockrank catalog). Built from source on demand.
LDCLINT := bin/ldclint

.PHONY: all build test vet lint invariants race fuzz-smoke bench bench-smoke bench-read bench-format bench-shards bench-tail bench-blob run-server server-smoke ci

# run-server knobs (make run-server DB=/path PORT=6380)
DB ?= /tmp/ldcserver-db
PORT ?= 6380

all: build

build:
	$(GO) build $(TESTFLAGS) ./...

test:
	$(GO) test $(TESTFLAGS) ./...

vet:
	$(GO) vet $(TESTFLAGS) ./...

$(LDCLINT): tools/ldclint/*.go
	$(GO) build -o $(LDCLINT) ./tools/ldclint

# Run the repo-specific analyzers over every package, plus their own
# regression suite (fixture packages under tools/ldclint/testdata). go vet
# analyzes _test.go files as part of each package's test variants, so the
# analyzers cover test code too — no extra invocation needed.
lint: $(LDCLINT)
	$(GO) test $(GOFLAGS) ./tools/ldclint
	$(GO) vet -vettool=$(LDCLINT) $(TESTFLAGS) ./...

# The runtime half of the correctness tooling: rebuild with -tags invariants
# so refcount poisoning, iterator use-after-close traps, and cache
# accounting checks are compiled in, then run the short suite under them.
invariants:
	$(GO) test -short $(if $(TAGS),-tags 'invariants $(TAGS)',-tags invariants) $(GOFLAGS) ./...

# The concurrent compaction engine must stay race-clean; -short skips the
# multi-minute stress runs but still covers the pool, claims, and cache.
race:
	$(GO) test -race -short $(TESTFLAGS) ./...

# Ten seconds of each decoder-facing fuzzer: enough to shake out shallow
# regressions in the block, compression, codec, and vlog record parsers on
# every CI run; long campaigns stay manual (go test -fuzz=... -fuzztime=10m).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzBlockRoundTrip -fuzztime $(FUZZTIME) $(TESTFLAGS) ./internal/sstable
	$(GO) test -run XXX -fuzz FuzzLZ4Decode -fuzztime $(FUZZTIME) $(TESTFLAGS) ./internal/compress
	$(GO) test -run XXX -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) $(TESTFLAGS) ./internal/compress
	$(GO) test -run XXX -fuzz FuzzVlogRecordDecode -fuzztime $(FUZZTIME) $(TESTFLAGS) ./internal/vlog

bench:
	$(GO) test -run XXX -bench . -benchtime 1x $(TESTFLAGS) .

# One race-checked pass over the group-commit writer benchmark and the
# serving-layer benchmark: catches write-path and protocol races without
# measuring anything. Real server numbers live in BENCH_server.json.
bench-smoke:
	$(GO) test -race -run XXX -bench BenchmarkConcurrentWriters -benchtime 1x $(TESTFLAGS) ./internal/core
	$(GO) test -race -run XXX -bench 'BenchmarkServerPipelinedSet/sync=false/conns=16' -benchtime 1x $(TESTFLAGS) ./internal/server

# One race-checked pass over the concurrent-read benchmarks: exercises the
# lock-free read state against flush/compaction republication without
# measuring anything. Real numbers live in BENCH_read_path.json.
bench-read:
	$(GO) test -race -run XXX -bench 'BenchmarkGetConcurrent|BenchmarkGetCacheHit' -benchtime 1x $(TESTFLAGS) ./internal/core

# One race-checked pass over the on-disk format sweep (raw vs flate vs lz4
# fill/scan/footprint): exercises every codec and checksum through flush,
# compaction, and the block cache without measuring anything. Real numbers
# live in BENCH_format.json.
bench-format:
	$(GO) test -race -run XXX -bench BenchmarkFormat -benchtime 1x $(TESTFLAGS) .

# One race-checked pass over the sharded-writers sweep (shards 1/2/4/8 x 16
# writers): exercises hash routing, per-shard commit pipelines, and shared
# WAL-directory recovery under the race detector without measuring
# anything. Real numbers live in BENCH_shards.json.
bench-shards:
	$(GO) test -race -run XXX -bench BenchmarkShardedWriters -benchtime 1x $(TESTFLAGS) ./internal/core

# The tail-latency gate: run the brownout scenario (sustained load over a
# compaction backlog, I/O limiter on vs off at equal offered load), record
# the comparison to BENCH_tail.json, and fail if the limiter-on side's
# foreground P99.9 exceeds 1.5x the limiter-off side's. The artifact's
# headline ratio sits just under 1.0x; the 1.5x budget leaves room for
# loaded-host noise while still catching regressions that invert the
# scheduler into a tail liability.
bench-tail:
	$(GO) run $(TESTFLAGS) ./cmd/ldcbench -json BENCH_tail.json -tailbudget 1.5 brownout

# The value-separation gate: sweep value size 128B-64KiB writing the same
# user-byte volume with separation off vs on, record the comparison to
# BENCH_blob.json, and fail unless separation cuts compaction write
# amplification by at least 2x at 4KiB+ values. The measured reductions sit
# far above the budget (hundreds of x at 16KiB+); the small-value rows are
# reported ungated — there the log's own bytes and GC rewrites eat most of
# the win, which is the honest half of the artifact.
bench-blob:
	$(GO) run $(TESTFLAGS) ./cmd/ldcbench -json BENCH_blob.json -blobgain 2 blob

# Serve an LDC database over RESP; talk to it with redis-cli -p $(PORT).
run-server: build
	$(GO) run ./cmd/ldcserver -db $(DB) -addr 127.0.0.1:$(PORT)

# End-to-end smoke of the real binary: build, start, PING/SET/GET/INFO via
# the Go client, SIGTERM, require a graceful drain and exit 0.
server-smoke:
	$(GO) test -count 1 -run TestServerBinarySmoke $(TESTFLAGS) ./cmd/ldcserver

ci: vet lint race invariants fuzz-smoke bench-smoke bench-read bench-format bench-shards bench-tail bench-blob server-smoke
