GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-read run-server server-smoke ci

# run-server knobs (make run-server DB=/path PORT=6380)
DB ?= /tmp/ldcserver-db
PORT ?= 6380

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent compaction engine must stay race-clean; -short skips the
# multi-minute stress runs but still covers the pool, claims, and cache.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# One race-checked pass over the group-commit writer benchmark and the
# serving-layer benchmark: catches write-path and protocol races without
# measuring anything. Real server numbers live in BENCH_server.json.
bench-smoke:
	$(GO) test -race -run XXX -bench BenchmarkConcurrentWriters -benchtime 1x ./internal/core
	$(GO) test -race -run XXX -bench 'BenchmarkServerPipelinedSet/sync=false/conns=16' -benchtime 1x ./internal/server

# One race-checked pass over the concurrent-read benchmarks: exercises the
# lock-free read state against flush/compaction republication without
# measuring anything. Real numbers live in BENCH_read_path.json.
bench-read:
	$(GO) test -race -run XXX -bench 'BenchmarkGetConcurrent|BenchmarkGetCacheHit' -benchtime 1x ./internal/core

# Serve an LDC database over RESP; talk to it with redis-cli -p $(PORT).
run-server: build
	$(GO) run ./cmd/ldcserver -db $(DB) -addr 127.0.0.1:$(PORT)

# End-to-end smoke of the real binary: build, start, PING/SET/GET/INFO via
# the Go client, SIGTERM, require a graceful drain and exit 0.
server-smoke:
	$(GO) test -count 1 -run TestServerBinarySmoke ./cmd/ldcserver

ci: vet race bench-smoke bench-read server-smoke
