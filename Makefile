GO ?= go

.PHONY: all build test vet race bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent compaction engine must stay race-clean; -short skips the
# multi-minute stress runs but still covers the pool, claims, and cache.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

ci: vet race
