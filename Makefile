GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-read ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent compaction engine must stay race-clean; -short skips the
# multi-minute stress runs but still covers the pool, claims, and cache.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# One race-checked pass over the group-commit writer benchmark: catches
# write-path races and pipeline regressions without measuring anything.
bench-smoke:
	$(GO) test -race -run XXX -bench BenchmarkConcurrentWriters -benchtime 1x ./internal/core

# One race-checked pass over the concurrent-read benchmarks: exercises the
# lock-free read state against flush/compaction republication without
# measuring anything. Real numbers live in BENCH_read_path.json.
bench-read:
	$(GO) test -race -run XXX -bench 'BenchmarkGetConcurrent|BenchmarkGetCacheHit' -benchtime 1x ./internal/core

ci: vet race bench-smoke bench-read
