// Command ldclint is a repo-specific vettool: it machine-checks the
// concurrency and resource-handling invariants this engine's correctness
// depends on, so that rules which previously lived in prose (DESIGN.md,
// review comments) fail `make ci` instead of waiting for the race detector
// to catch one interleaving.
//
// It is run by the go tool:
//
//	go build -o bin/ldclint ./tools/ldclint
//	go vet -vettool=bin/ldclint ./...
//
// Five analyzers are registered (see their files for the precise rules):
//
//	mutexio     — fsync/network I/O performed while a mutex is held
//	refpair     — Ref/Acquire without a dominating Unref/Release on every path
//	atomicfield — plain access to fields published via sync/atomic
//	errclose    — dropped errors from Close/Sync/Flush on WAL/SSTable/net/vfs types
//	lockorder   — whole-program lock acquisition order: cycles (potential
//	              deadlocks) with full witness chains, violations of the
//	              //ldclint:lockrank ranking, unranked mutex fields in
//	              internal/ packages, and Rank() calls disagreeing with
//	              their field's annotation
//
// lockorder is interprocedural: each package's per-function lock summaries
// travel as vet "facts" (unit.go), so a cycle spanning packages is reported
// in the package that completes it. Its runtime counterpart is
// internal/invariants' -tags invariants lock-rank tracker, which validates
// the same declared order on real executions.
//
// A finding can be suppressed with a directive comment on the flagged line
// or the line above it:
//
//	//ldclint:ignore <analyzer> <reason>
//
// The reason is mandatory; directives without one are themselves reported,
// as are stale directives that no longer suppress anything.
//
// The command speaks the cmd/go vettool protocol (the same one
// golang.org/x/tools' unitchecker implements) using only the standard
// library: it answers -V=full with a content hash for the build cache,
// answers -flags with its (empty) flag list, and otherwise expects a single
// vet config file argument describing one package to analyze.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	if len(args) == 1 && args[0] == "-V=full" {
		// cmd/go fingerprints the tool for its build cache with the output
		// of -V=full; hashing our own executable makes rebuilds of the tool
		// invalidate cached vet results, exactly like unitchecker does.
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, selfHash())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks for the tool's flag set as JSON; we define none.
		fmt.Println("[]")
		return
	}
	if len(args) != 1 || args[0] == "help" || args[0][0] == '-' {
		fmt.Fprintf(os.Stderr, "usage: %s vet.cfg\n(%s is a vettool; run it via go vet -vettool)\n", progname, progname)
		os.Exit(1)
	}

	diags, err := runUnit(args[0], Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// selfHash hashes the running executable (best effort: a fixed string keeps
// the protocol working even if the binary cannot be reopened).
func selfHash() []byte {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return []byte("unknown")
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return []byte("unknown")
	}
	return h.Sum(nil)
}
