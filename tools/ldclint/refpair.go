package main

// refpair encodes the refcount discipline that shipped review fixes twice:
// a reference acquired with Ref()/ref()/Acquire() — or returned already
// held by version.Set.Current and DB.loadReadState — must be released with
// the matching Unref()/unref()/Release() on every exit path of the
// function, unless ownership demonstrably moves elsewhere (the value is
// returned, stored into longer-lived structure, passed to another function,
// or captured by a closure).
//
// The analysis is intraprocedural and defer-aware:
//
//   - E.Ref()-style calls open an obligation keyed by the receiver
//     expression; v := E.Current()-style calls open one keyed by the bound
//     identifier, provided the result type actually carries a release
//     method (so arbitrary methods that happen to be called Current are
//     ignored).
//   - A matching release call closes the obligation; a *deferred* release
//     closes it for every subsequent exit.
//   - At each return (and at the function's fall-through exit) every still
//     open obligation whose value is not part of the returned expressions
//     is reported — once per acquire site.
//   - A branch taken only when the value is nil (if v == nil { ... })
//     clears the obligation inside that branch: there is nothing to
//     release.
//
// Escapes are computed function-wide and deliberately generously — an
// identifier that anywhere in the function is passed as an argument, stored
// through a selector/index, placed in a composite literal, sent on a
// channel, or captured by a function literal is treated as handed off, and
// obligations on it are never reported. The goal is catching the local
// "took a ref, error-pathed out without dropping it" bug with no false
// positives on ownership-transfer patterns.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var refpairAnalyzer = &Analyzer{
	Name: "refpair",
	Doc:  "reports Ref/Acquire calls lacking a matching Unref/Release on some exit path",
	Run:  runRefpair,
}

// acquireMethods open an obligation on their receiver; the value is the
// release name used in messages.
var acquireMethods = map[string]string{
	"Ref":     "Unref",
	"ref":     "unref",
	"Acquire": "Release",
	"acquire": "release",
}

// acquireFuncs return a value that arrives with a reference already held.
var acquireFuncs = map[string]bool{
	"Current":       true,
	"loadReadState": true,
	"GetReader":     true, // vlog.Log hands out pooled readers; Release returns them
}

var releaseMethods = map[string]bool{
	"Unref": true, "unref": true, "Release": true, "release": true,
}

func runRefpair(pass *Pass) {
	for _, fn := range funcsOf(pass.Files) {
		w := &refWalker{
			pass:     pass,
			escaped:  escapingIdents(fn.body),
			reported: map[token.Pos]bool{},
		}
		exit := w.walk(fn.body.List, map[string]*obligation{})
		if !terminates(fn.body.List) {
			w.checkExit(exit, nil)
		}
	}
}

// obligation is one open acquire.
type obligation struct {
	key     string
	pos     token.Pos
	typ     string // type name, for the message
	release string // expected release method name
}

type refWalker struct {
	pass     *Pass
	escaped  map[string]bool
	reported map[token.Pos]bool
}

// hasReleaseMethod reports whether t's method set (including pointer
// methods) contains any known release method — the gate that keeps the
// analyzer from tracking unrelated types.
func hasReleaseMethod(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	for _, tt := range []types.Type{types.Type(n), types.NewPointer(n)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			if releaseMethods[ms.At(i).Obj().Name()] {
				return true
			}
		}
	}
	return false
}

// escapingIdents pre-scans a function body for identifiers whose value is
// handed off: call arguments, channel sends, stores through non-ident
// left-hand sides, composite-literal elements, and closure captures.
// Return statements are intentionally NOT escapes here — handoff-by-return
// is checked per exit, so a return that leaks on one path is still caught
// on another.
func escapingIdents(body *ast.BlockStmt) map[string]bool {
	esc := map[string]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				esc[id.Name] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Release/acquire calls themselves are bookkeeping, not escapes.
			if name := calleeName(n); releaseMethods[name] || acquireMethods[name] != "" {
				return true
			}
			for _, arg := range n.Args {
				mark(arg)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					if _, isIdent := n.Lhs[i].(*ast.Ident); !isIdent {
						mark(rhs)
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				mark(el)
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					esc[id.Name] = true
				}
				return true
			})
			return false
		}
		return true
	})
	return esc
}

func (w *refWalker) walk(stmts []ast.Stmt, open map[string]*obligation) map[string]*obligation {
	for _, s := range stmts {
		open = w.walkStmt(s, open)
	}
	return open
}

func (w *refWalker) walkStmt(s ast.Stmt, open map[string]*obligation) map[string]*obligation {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.handleCall(call, open)
		}

	case *ast.DeferStmt:
		w.handleCall(s.Call, open)

	case *ast.AssignStmt:
		// v := E.Current() — a result-form acquire, tracked only in the
		// simple one-to-one binding.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && w.isAcquireFunc(call) {
					open[id.Name] = &obligation{
						key:     id.Name,
						pos:     call.Pos(),
						typ:     typeString(w.pass, call),
						release: "Unref/Release",
					}
					return open
				}
			}
		}
		// An assignment overwriting a tracked identifier ends its tracking
		// (shadowing or reuse; the old value's fate is beyond this pass).
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				delete(open, id.Name)
			}
		}

	case *ast.ReturnStmt:
		w.checkExit(open, s)
		return open

	case *ast.IfStmt:
		if s.Init != nil {
			open = w.walkStmt(s.Init, open)
		}
		key, isNil := nilCheckedKey(w.pass.Fset, s.Cond)
		bodyOpen := cloneOb(open)
		if key != "" && isNil {
			// if v == nil { ... }: nothing to release inside the nil arm.
			delete(bodyOpen, key)
		}
		bodyOpen = w.walk(s.Body.List, bodyOpen)
		elseOpen := open
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseOpen = w.walk(e.List, cloneOb(open))
		case *ast.IfStmt:
			elseOpen = w.walkStmt(e, cloneOb(open))
		}
		if key != "" && !isNil && s.Else == nil {
			// if v != nil { release(v) } with no else: the skip path holds
			// nil, so the obligation is satisfied when the body released it.
			elseOpen = cloneOb(elseOpen)
			delete(elseOpen, key)
		}
		bodyTerm := terminates(s.Body.List)
		var elseTerm bool
		if e, ok := s.Else.(*ast.BlockStmt); ok {
			elseTerm = terminates(e.List)
		}
		switch {
		case bodyTerm && elseTerm:
			return map[string]*obligation{}
		case bodyTerm:
			return elseOpen
		case elseTerm:
			return bodyOpen
		default:
			// Open in either branch ⇒ possibly unreleased on some path.
			return unionOb(bodyOpen, elseOpen)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			open = w.walkStmt(s.Init, open)
		}
		w.walk(s.Body.List, cloneOb(open))
		return open

	case *ast.RangeStmt:
		w.walk(s.Body.List, cloneOb(open))
		return open

	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walk(cc.Body, cloneOb(open))
			}
		}
		return open

	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walk(cc.Body, cloneOb(open))
			}
		}
		return open

	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walk(cc.Body, cloneOb(open))
			}
		}
		return open

	case *ast.BlockStmt:
		return w.walk(s.List, open)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, open)
	}
	return open
}

// handleCall updates obligations for acquire/release calls.
func (w *refWalker) handleCall(call *ast.CallExpr, open map[string]*obligation) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	recv := recvType(w.pass.Info, call)
	if release, isAcq := acquireMethods[name]; isAcq && recv != nil && hasReleaseMethod(recv) {
		key := exprKey(w.pass.Fset, sel.X)
		open[key] = &obligation{
			key:     key,
			pos:     call.Pos(),
			typ:     types.TypeString(deref(recv), types.RelativeTo(w.pass.Pkg)),
			release: release,
		}
		return
	}
	if releaseMethods[name] && recv != nil {
		delete(open, exprKey(w.pass.Fset, sel.X))
	}
}

// isAcquireFunc reports whether call is a known acquiring function whose
// result carries a reference (and a release method to prove it).
func (w *refWalker) isAcquireFunc(call *ast.CallExpr) bool {
	if !acquireFuncs[calleeName(call)] {
		return false
	}
	tv, ok := w.pass.Info.Types[ast.Expr(call)]
	if !ok || tv.Type == nil {
		return false
	}
	return hasReleaseMethod(tv.Type)
}

func typeString(pass *Pass, call *ast.CallExpr) string {
	if tv, ok := pass.Info.Types[ast.Expr(call)]; ok && tv.Type != nil {
		return types.TypeString(deref(tv.Type), types.RelativeTo(pass.Pkg))
	}
	return "value"
}

// checkExit reports every open obligation that neither escaped nor is
// handed off by the return statement itself.
func (w *refWalker) checkExit(open map[string]*obligation, ret *ast.ReturnStmt) {
	for _, ob := range open {
		if w.escaped[rootIdent(ob.key)] || w.reported[ob.pos] {
			continue
		}
		if ret != nil && returnsKey(ret, rootIdent(ob.key)) {
			continue
		}
		w.reported[ob.pos] = true
		w.pass.Reportf(ob.pos,
			"%s reference acquired here is not released on every path; call %s or hand the value off",
			ob.typ, ob.release)
	}
}

// rootIdent extracts the leading identifier of a key like "rs" or "db.set".
func rootIdent(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i]
		}
	}
	return key
}

// returnsKey reports whether the identifier appears anywhere in the return
// expressions (ownership transferred to the caller).
func returnsKey(ret *ast.ReturnStmt, ident string) bool {
	found := false
	for _, e := range ret.Results {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == ident {
				found = true
			}
			return !found
		})
	}
	return found
}

// nilCheckedKey recognizes `X == nil` / `X != nil` conditions and returns
// the key for X plus whether the nil case is the true branch.
func nilCheckedKey(fset *token.FileSet, cond ast.Expr) (key string, isNil bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false
	}
	var x ast.Expr
	switch {
	case isNilIdent(be.Y):
		x = be.X
	case isNilIdent(be.X):
		x = be.Y
	default:
		return "", false
	}
	return exprKey(fset, x), be.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func cloneOb(m map[string]*obligation) map[string]*obligation {
	out := make(map[string]*obligation, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// unionOb keeps an obligation open if it is open after either branch —
// missing a release on one path is exactly the bug class.
func unionOb(a, b map[string]*obligation) map[string]*obligation {
	out := cloneOb(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}
