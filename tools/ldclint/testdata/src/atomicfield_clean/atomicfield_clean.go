// Package atomicfield_clean holds the legal atomic access shapes; the
// atomicfield analyzer must stay silent on every one of them.
package atomicfield_clean

import "sync/atomic"

type counters struct {
	n       int64 // function-style atomic field
	typed   atomic.Int64
	buckets [8]atomic.Int64
	plain   int64 // never touched atomically; plain access is fine
}

// Every access of a function-style field goes through sync/atomic.
func (c *counters) inc() int64 {
	atomic.AddInt64(&c.n, 1)
	return atomic.LoadInt64(&c.n)
}

// Typed atomics used through their methods.
func (c *counters) typedUse() int64 {
	c.typed.Store(7)
	c.typed.Add(1)
	return c.typed.Load()
}

// Sharing a typed atomic by address is how *atomic.T is meant to travel.
func (c *counters) share() *atomic.Int64 {
	return &c.typed
}

// Indexing an addressable array of atomics does not copy the element; this
// is the canonical histogram-bucket idiom.
func (c *counters) bump(i int) int64 {
	c.buckets[i].Add(1)
	return c.buckets[i].Load()
}

func (c *counters) shareElem(i int) *atomic.Int64 {
	return &c.buckets[i]
}

// Constructors run before the value is shared; plain initialization of a
// function-style field is conventional there.
func NewCounters(start int64) *counters {
	c := &counters{}
	c.n = start
	return c
}

// A never-atomic field stays free.
func (c *counters) usePlain() int64 {
	c.plain++
	return c.plain
}
