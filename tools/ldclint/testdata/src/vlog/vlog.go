// Package vlog is a hermetic stand-in for repro/internal/vlog; errclose
// matches it by the "/vlog"-suffix package-path rule, and refpair tracks
// GetReader's pooled result (Release returns it to the pool).
package vlog

type Pointer struct {
	Segment uint64
	Offset  uint64
	Length  uint32
}

type Log struct{ r Reader }

func (l *Log) GetReader() *Reader { return &l.r }
func (l *Log) Close() error       { return nil }

type Reader struct{ held bool }

func (r *Reader) Read(p Pointer) (key, value []byte, err error) { return nil, nil, nil }
func (r *Reader) Release()                                      {}

type Writer struct{ n int }

func (w *Writer) Append(key, value []byte) (Pointer, error) { return Pointer{}, nil }
func (w *Writer) Sync() error                               { return nil }
func (w *Writer) Close() error                              { return nil }

type Segment struct{ size int64 }

func (s *Segment) Scan(fn func(Pointer, []byte, []byte) error) error { return nil }
func (s *Segment) Close() error                                      { return nil }
