// Package refs supplies refcounted types for the refpair fixtures, shaped
// like version.Version / version.Set: an explicit Ref/Unref pair plus a
// Current() acquire-function whose result arrives referenced.
package refs

type Version struct{ refs int }

func (v *Version) Ref()   { v.refs++ }
func (v *Version) Unref() { v.refs-- }

type Set struct{ cur *Version }

func (s *Set) Current() *Version {
	s.cur.Ref()
	return s.cur
}

// Plain has a Current method but no release method in its result's method
// set, so refpair must NOT track it.
type Plain struct{ cur *Thing }

func (p *Plain) Current() *Thing { return p.cur }

type Thing struct{ x int }

func (t *Thing) Use() {}
