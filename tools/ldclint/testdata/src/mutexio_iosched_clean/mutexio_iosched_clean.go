// Package mutexio_iosched_clean holds the sanctioned limiter shapes — the
// ones the compaction builders actually use: snapshot state under the lock,
// release, then pay the token wait outside.
package mutexio_iosched_clean

import (
	"iosched"
	"sync"
)

type compactor struct {
	mu  sync.Mutex
	lim *iosched.Limiter
	n   int
}

// The builder pattern: read the charge size under the lock, wait outside.
func (c *compactor) chargeOutside() {
	c.mu.Lock()
	n := c.n
	lim := c.lim
	c.mu.Unlock()
	lim.Wait(iosched.TierMerge, n)
}

// Enabled is a nil-check plus an atomic-free field read — legal under the
// lock; only Wait blocks.
func (c *compactor) enabledUnderLock() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lim.Enabled()
}

// Early-unlock error path must not poison the main path.
func (c *compactor) earlyUnlock(fail bool) {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		c.lim.Wait(iosched.TierL0, 1)
		return
	}
	c.mu.Unlock()
	c.lim.Wait(iosched.TierL0, 1)
}
