// Package wal is a hermetic stand-in for repro/internal/wal; the analyzers
// match it by the "/wal"-suffix package-path rule.
package wal

type Writer struct{ n int }

func (w *Writer) AddRecord(p []byte) error { return nil }
func (w *Writer) Flush() error             { return nil }
func (w *Writer) Sync() error              { return nil }
