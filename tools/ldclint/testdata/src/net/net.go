// Package net is a hermetic stand-in for the standard library's net.
package net

type Conn struct{ fd int }

func (c *Conn) Read(b []byte) (int, error)  { return 0, nil }
func (c *Conn) Write(b []byte) (int, error) { return 0, nil }
func (c *Conn) Close() error                { return nil }
func (c *Conn) SetNoDelay(v bool)           {}
func (c *Conn) LocalAddr() string           { return "" }

type Listener struct{ fd int }

func (l *Listener) Accept() (*Conn, error) { return nil, nil }
func (l *Listener) Close() error           { return nil }
func (l *Listener) Addr() string           { return "" }
