// Package sstable is a hermetic stand-in for repro/internal/sstable.
package sstable

type Writer struct{ n int }

func (w *Writer) Add(key, value []byte) error { return nil }
func (w *Writer) Finish() (int, error)        { return 0, nil }

type Reader struct{ n int }

func (r *Reader) Close() error { return nil }
