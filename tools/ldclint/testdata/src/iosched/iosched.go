// Package iosched is a hermetic stand-in for repro/internal/iosched; the
// analyzers match it by the "/iosched"-suffix package-path rule.
package iosched

type Tier int

const (
	TierFlush Tier = iota
	TierL0
	TierMerge
)

type Limiter struct{ rate int64 }

func (l *Limiter) Wait(tier Tier, n int) {}
func (l *Limiter) Enabled() bool         { return l != nil && l.rate > 0 }
func (l *Limiter) Close()                {}
