// Package errclose_clean holds the sanctioned error-handling shapes; the
// errclose analyzer must stay silent on every one of them.
package errclose_clean

import (
	"vfs"
	"wal"
)

// closer is an application-level type; its Close is out of scope even when
// dropped (only wal/sstable/vfs/net receivers are durability-critical).
type closer struct{ f *vfs.File }

func (c *closer) Close() error { return c.f.Close() }

// Handled.
func handled(f *vfs.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// Propagated.
func propagated(w *wal.Writer) error {
	return w.Sync()
}

// Explicitly discarded: `_ =` states intent and is the sanctioned form.
func discarded(f *vfs.File) {
	_ = f.Close()
}

// Deferred Close on a read-only handle is conventional; Go offers no
// ergonomic error route for it.
func deferredClose(f *vfs.File) {
	defer f.Close()
}

// Out-of-scope receiver: dropping an application-level Close stays legal.
func appLevel(c *closer) {
	c.Close()
}
