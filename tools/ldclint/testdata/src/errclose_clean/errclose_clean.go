// Package errclose_clean holds the sanctioned error-handling shapes; the
// errclose analyzer must stay silent on every one of them.
package errclose_clean

import (
	"vfs"
	"vlog"
	"wal"
)

// closer is an application-level type; its Close is out of scope even when
// dropped (only wal/sstable/vfs/net receivers are durability-critical).
type closer struct{ f *vfs.File }

func (c *closer) Close() error { return c.f.Close() }

// Handled.
func handled(f *vfs.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// Propagated.
func propagated(w *wal.Writer) error {
	return w.Sync()
}

// Explicitly discarded: `_ =` states intent and is the sanctioned form.
func discarded(f *vfs.File) {
	_ = f.Close()
}

// Deferred Close on a read-only handle is conventional; Go offers no
// ergonomic error route for it.
func deferredClose(f *vfs.File) {
	defer f.Close()
}

// Out-of-scope receiver: dropping an application-level Close stays legal.
func appLevel(c *closer) {
	c.Close()
}

// Handled vlog writer sync (the commit path's shape).
func handledVlogSync(w *vlog.Writer) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return nil
}

// Deferred segment close with the error captured (the GC scan shape).
func capturedVlogSegmentClose(s *vlog.Segment) (err error) {
	defer func() {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}()
	return nil
}

// Explicit discard stays sanctioned for vlog types too.
func discardedVlogClose(l *vlog.Log) {
	_ = l.Close()
}
