// Package mutexio_fire seeds every flavor of I/O-under-lock violation the
// mutexio analyzer exists to catch.
package mutexio_fire

import (
	"net"
	"sstable"
	"sync"
	"vfs"
	"wal"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	logw *wal.Writer
	f    *vfs.File
	fs   *vfs.FS
	tw   *sstable.Writer
	conn *net.Conn
}

// Straight-line: fsync between Lock and Unlock.
func (s *store) syncUnderLock() {
	s.mu.Lock()
	_ = s.logw.Sync() // want `call to \(wal.Writer\).Sync while "s.mu" is held`
	s.mu.Unlock()
}

// Deferred unlock pins the lock to function exit; everything after the
// defer runs under it.
func (s *store) deferHeld() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `call to \(vfs.File\).Sync while "s.mu" is held`
}

// RLock counts too: a reader lock still blocks writers for the fsync's
// whole duration.
func (s *store) readLocked() {
	s.rw.RLock()
	_, _ = s.f.ReadAt(nil, 0) // want `call to \(vfs.File\).ReadAt while "s.rw" is held`
	s.rw.RUnlock()
}

// Filesystem namespace operations are I/O as much as file writes are.
func (s *store) fsOpUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.fs.Remove("x") // want `call to \(vfs.FS\).Remove while "s.mu" is held`
}

// Network writes under a lock serialize the event loop behind the peer.
func (s *store) netWriteUnderLock(b []byte) {
	s.mu.Lock()
	_, _ = s.conn.Write(b) // want `call to \(net.Conn\).Write while "s.mu" is held`
	s.mu.Unlock()
}

// SSTable writer calls flush blocks to disk.
func (s *store) tableAddUnderLock(k, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.tw.Add(k, v) // want `call to \(sstable.Writer\).Add while "s.mu" is held`
}

// Held on every non-terminating path through the branch: still flagged
// after the merge.
func (s *store) heldOnAllPaths(cond bool) {
	s.mu.Lock()
	if cond {
		s.logw = nil
	}
	_ = s.f.Sync() // want `call to \(vfs.File\).Sync while "s.mu" is held`
	s.mu.Unlock()
}
