// Package errclose_fire seeds silently dropped errors from the
// durability-critical release methods.
package errclose_fire

import (
	"net"
	"sstable"
	"vfs"
	"vlog"
	"wal"
)

func droppedFileClose(f *vfs.File) {
	f.Close() // want `error from \(vfs.File\).Close is dropped`
}

func droppedWALSync(w *wal.Writer) {
	w.Sync() // want `error from \(wal.Writer\).Sync is dropped`
}

func droppedWALFlush(w *wal.Writer) {
	w.Flush() // want `error from \(wal.Writer\).Flush is dropped`
}

func droppedTableFinish(w *sstable.Writer) {
	w.Finish() // want `error from \(sstable.Writer\).Finish is dropped`
}

func droppedReaderClose(r *sstable.Reader) {
	r.Close() // want `error from \(sstable.Reader\).Close is dropped`
}

func droppedConnClose(c *net.Conn) {
	c.Close() // want `error from \(net.Conn\).Close is dropped`
}

func droppedListenerClose(l *net.Listener) {
	l.Close() // want `error from \(net.Listener\).Close is dropped`
}

func droppedVlogWriterSync(w *vlog.Writer) {
	w.Sync() // want `error from \(vlog.Writer\).Sync is dropped`
}

func droppedVlogWriterClose(w *vlog.Writer) {
	w.Close() // want `error from \(vlog.Writer\).Close is dropped`
}

func droppedVlogSegmentClose(s *vlog.Segment) {
	s.Close() // want `error from \(vlog.Segment\).Close is dropped`
}

func droppedVlogLogClose(l *vlog.Log) {
	l.Close() // want `error from \(vlog.Log\).Close is dropped`
}
