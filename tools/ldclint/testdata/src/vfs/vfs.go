// Package vfs is a hermetic stand-in for repro/internal/vfs.
package vfs

type File struct{ fd int }

func (f *File) Write(p []byte) (int, error)            { return 0, nil }
func (f *File) ReadAt(p []byte, off int64) (int, error) { return 0, nil }
func (f *File) Sync() error                            { return nil }
func (f *File) Close() error                           { return nil }
func (f *File) Size() (int64, error)                   { return 0, nil }

type FS struct{ root string }

func (fs *FS) Create(name string) (*File, error) { return nil, nil }
func (fs *FS) Open(name string) (*File, error)   { return nil, nil }
func (fs *FS) Remove(name string) error          { return nil }
func (fs *FS) Exists(name string) bool           { return false }
