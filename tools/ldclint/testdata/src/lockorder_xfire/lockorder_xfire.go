// Package lockorder_xfire closes the cycle lockorder_xdep half-built: the
// dependency orders Gate before Mu, this package orders Mu before Gate
// (through a local call), and the analyzer must stitch the two together from
// the dependency's facts and report the cycle here — the package that
// witnesses the contradiction.
package lockorder_xfire

import "lockorder_xdep"

func MuThenGate(d *lockorder_xdep.D) {
	d.Mu.Lock()
	defer d.Mu.Unlock()
	lockGate(d) // want `lock-order cycle: lockorder_xdep.D.Mu -> lockorder_xdep.D.Gate -> lockorder_xdep.D.Mu.*in lockorder_xdep.GateThenMu`
}

func lockGate(d *lockorder_xdep.D) {
	d.Gate.Lock()
	d.Gate.Unlock()
}
