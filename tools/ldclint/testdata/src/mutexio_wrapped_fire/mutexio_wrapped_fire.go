// Package mutexio_wrapped_fire holds I/O under invariants.Mutex wrappers.
// Converting a field from sync.Mutex to the ranked wrapper must not silence
// mutexio — the wrapper is the same lock with bookkeeping attached.
package mutexio_wrapped_fire

import (
	"invariants"
	"vfs"
)

type store struct {
	//ldclint:lockrank wrapped.mu 10
	mu invariants.Mutex
	//ldclint:lockrank wrapped.rw 20
	rw invariants.RWMutex
	f  *vfs.File
	fs *vfs.FS
}

func (s *store) syncUnderWrappedLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `call to \(vfs.File\).Sync while "s.mu" is held`
}

func (s *store) removeUnderWrappedRLock() {
	s.rw.RLock()
	_ = s.fs.Remove("x") // want `call to \(vfs.FS\).Remove while "s.rw" is held`
	s.rw.RUnlock()
}
