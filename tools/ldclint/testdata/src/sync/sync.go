// Package sync is a hermetic stand-in for the standard library's sync,
// carrying just the shapes the analyzers match on. Fixture packages import
// it by the path "sync", so type-based matching behaves exactly as it does
// against real code, without needing stdlib export data in the test
// environment.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
