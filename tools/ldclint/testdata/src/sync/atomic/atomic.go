// Package atomic is a hermetic stand-in for sync/atomic (see the fake sync
// package for why).
package atomic

func LoadInt64(addr *int64) int64           { return *addr }
func StoreInt64(addr *int64, v int64)       { *addr = v }
func AddInt64(addr *int64, d int64) int64   { *addr += d; return *addr }
func LoadInt32(addr *int32) int32           { return *addr }
func StoreInt32(addr *int32, v int32)       { *addr = v }
func AddInt32(addr *int32, d int32) int32   { *addr += d; return *addr }
func CompareAndSwapInt64(addr *int64, old, new int64) bool {
	if *addr == old {
		*addr = new
		return true
	}
	return false
}

type Int64 struct{ v int64 }

func (x *Int64) Load() int64       { return x.v }
func (x *Int64) Store(v int64)     { x.v = v }
func (x *Int64) Add(d int64) int64 { x.v += d; return x.v }

type Int32 struct{ v int32 }

func (x *Int32) Load() int32       { return x.v }
func (x *Int32) Store(v int32)     { x.v = v }
func (x *Int32) Add(d int32) int32 { x.v += d; return x.v }

type Bool struct{ v bool }

func (x *Bool) Load() bool   { return x.v }
func (x *Bool) Store(v bool) { x.v = v }
func (x *Bool) CompareAndSwap(old, new bool) bool {
	if x.v == old {
		x.v = new
		return true
	}
	return false
}
