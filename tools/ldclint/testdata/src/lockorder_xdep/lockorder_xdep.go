// Package lockorder_xdep is the dependency half of the cross-package cycle
// fixture: on its own it establishes only the Gate -> Mu ordering, which is
// perfectly consistent, so this package must be silent. lockorder_xfire
// imports it and adds the opposite ordering; the cycle is reported there,
// proving summaries flow through the facts protocol.
package lockorder_xdep

import "sync"

type D struct {
	Mu   sync.Mutex
	Gate sync.Mutex
}

func GateThenMu(d *D) {
	d.Gate.Lock()
	defer d.Gate.Unlock()
	d.Mu.Lock()
	d.Mu.Unlock()
}
