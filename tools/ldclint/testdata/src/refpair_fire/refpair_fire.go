// Package refpair_fire seeds reference leaks: acquires with a missing
// release on at least one exit path.
package refpair_fire

import (
	"refs"
	"vlog"
)

type errFail struct{}

func (errFail) Error() string { return "fail" }

// Method-form acquire leaked on the error path.
func leakOnError(v *refs.Version, fail bool) error {
	v.Ref() // want `refs.Version reference acquired here is not released on every path`
	if fail {
		return errFail{}
	}
	v.Unref()
	return nil
}

// Result-form acquire (Current hands back a referenced version) never
// released at all.
func leakCurrent(s *refs.Set) int {
	v := s.Current() // want `refs.Version reference acquired here is not released on every path`
	if v == nil {
		return 0
	}
	return 1
}

// Released in one branch arm but not the other: the union merge keeps the
// obligation open.
func leakOneArm(s *refs.Set, done bool) {
	v := s.Current() // want `refs.Version reference acquired here is not released on every path`
	if done {
		v.Unref()
	}
}

// Pooled vlog reader leaked on the error path: the pool shrinks by one for
// every miss.
func leakVlogReaderOnError(l *vlog.Log, fail bool) error {
	r := l.GetReader() // want `vlog.Reader reference acquired here is not released on every path`
	if fail {
		return errFail{}
	}
	r.Release()
	return nil
}

// Released in one branch arm but not the other.
func leakVlogReaderOneArm(l *vlog.Log, done bool) {
	r := l.GetReader() // want `vlog.Reader reference acquired here is not released on every path`
	if done {
		r.Release()
	}
}
