// Package mutexio_iosched_fire seeds token-bucket waits performed under a
// lock: a Limiter.Wait can sleep for a full bucket refill, so parking it
// inside a mutex region hands the scheduler's deliberate background delay
// to every foreground caller of that lock.
package mutexio_iosched_fire

import (
	"iosched"
	"sync"
)

type compactor struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	lim *iosched.Limiter
}

// Straight-line: token wait between Lock and Unlock.
func (c *compactor) waitUnderLock(n int) {
	c.mu.Lock()
	c.lim.Wait(iosched.TierMerge, n) // want `call to \(iosched.Limiter\).Wait while "c.mu" is held`
	c.mu.Unlock()
}

// Deferred unlock pins the region to function exit; the wait inside the
// loop runs under it on every iteration.
func (c *compactor) deferHeld(blocks []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range blocks {
		c.lim.Wait(iosched.TierL0, n) // want `call to \(iosched.Limiter\).Wait while "c.mu" is held`
	}
}

// A reader lock still blocks writers for the whole refill.
func (c *compactor) readLocked(n int) {
	c.rw.RLock()
	c.lim.Wait(iosched.TierFlush, n) // want `call to \(iosched.Limiter\).Wait while "c.rw" is held`
	c.rw.RUnlock()
}
