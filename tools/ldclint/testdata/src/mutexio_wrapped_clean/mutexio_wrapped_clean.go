// Package mutexio_wrapped_clean releases the invariants wrapper before any
// I/O — the sanctioned shape, with ranks nested in order. Both analyzers
// must stay silent.
package mutexio_wrapped_clean

import (
	"invariants"
	"vfs"
)

type store struct {
	//ldclint:lockrank wclean.mu 10
	mu invariants.Mutex
	f  *vfs.File
}

func (s *store) snapshotThenSync() error {
	s.mu.Lock()
	size := s.stateLocked()
	s.mu.Unlock()
	_ = size
	return s.f.Sync()
}

func (s *store) stateLocked() int { return 0 }
