// Package invariants is a fixture stand-in for repro/internal/invariants:
// the ranked mutex wrappers, shaped like the real !invariants build. The
// analyzers must treat these exactly like sync mutexes — converting a field
// to the wrapper must not silence mutexio or lockorder.
package invariants

import "sync"

type Mutex struct {
	sync.Mutex
}

func (m *Mutex) Rank(name string, rank int) {}

type RWMutex struct {
	sync.RWMutex
}

func (m *RWMutex) Rank(name string, rank int) {}
