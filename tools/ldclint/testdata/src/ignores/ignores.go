// Package ignores exercises the //ldclint:ignore directive: a well-formed
// directive suppresses the named analyzer on its own line and the line
// below; a malformed or unknown-analyzer directive is itself a finding.
package ignores

import (
	"sync"
	"vfs"
)

type store struct {
	mu sync.Mutex
	f  *vfs.File
}

// Suppressed: directive on the line above the violation.
func sanctionedDrop(f *vfs.File) {
	//ldclint:ignore errclose scratch file cleanup; the error is meaningless
	f.Close()
}

// Suppressed: trailing directive on the violating line itself.
func sanctionedSync(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.f.Sync() //ldclint:ignore mutexio held deliberately in this fixture
}

// A directive only covers its named analyzer: errclose is suppressed,
// mutexio still fires.
func wrongAnalyzer(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ldclint:ignore errclose only the dropped error is sanctioned here
	s.f.Sync() // want `call to \(vfs.File\).Sync while "s.mu" is held`
}

// want(+2) `ldclint:ignore directive needs an analyzer name and a reason`
func missingReason(f *vfs.File) {
	//ldclint:ignore errclose
	f.Close() // want `error from \(vfs.File\).Close is dropped`
}

// want(+2) `ldclint:ignore names unknown analyzer "bogus"`
func unknownAnalyzer(f *vfs.File) {
	//ldclint:ignore bogus some perfectly fine reason
	f.Close() // want `error from \(vfs.File\).Close is dropped`
}

// Well-formed, real analyzer, but nothing on its line or the next produces
// a finding: the suppression is dead weight and is itself reported.
// want(+2) `ldclint:ignore for "mutexio" suppresses nothing \(stale directive\)`
func staleDirective(s *store) {
	//ldclint:ignore mutexio formerly held across this call
	s.noop()
}

func (s *store) noop() {}
