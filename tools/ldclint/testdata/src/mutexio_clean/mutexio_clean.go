// Package mutexio_clean holds the engine's sanctioned lock/I-O shapes; the
// mutexio analyzer must stay silent on every one of them.
package mutexio_clean

import (
	"net"
	"sync"
	"vfs"
	"wal"
)

type store struct {
	mu   sync.Mutex
	logw *wal.Writer
	f    *vfs.File
	conn *net.Conn
}

// The commit-pipeline pattern: append under the lock (deliberate design —
// AddRecord is a buffered in-memory append), capture the writer, release,
// then pay the fsync outside.
func (s *store) commitPattern(rec []byte) error {
	s.mu.Lock()
	if err := s.logw.AddRecord(rec); err != nil {
		s.mu.Unlock()
		return err
	}
	logw := s.logw
	s.mu.Unlock()
	return logw.Sync()
}

// Early-unlock error path must not poison the main path: after the merge
// the mutex is NOT held on every path that reaches the Sync.
func (s *store) earlyUnlock(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return s.f.Sync()
	}
	s.mu.Unlock()
	return s.f.Sync()
}

// A terminating branch drops out of the merge entirely.
func (s *store) terminatingBranch(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.f.Sync()
}

// Function literals run on their own schedule (usually another goroutine):
// lock state does not flow into them, and a literal that locks for itself
// and stays clean is clean.
func (s *store) spawned() {
	s.mu.Lock()
	go func() {
		_ = s.f.Sync()
	}()
	s.mu.Unlock()
}

// Non-blocking connection bookkeeping (deadlines, addresses) is not I/O.
func (s *store) connBookkeeping() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.SetNoDelay(true)
	_ = s.conn.LocalAddr()
}
