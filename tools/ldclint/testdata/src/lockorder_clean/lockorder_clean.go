// Package lockorder_clean exercises every sanctioned nesting shape: ranks
// strictly increasing inward (directly and through calls), sequential
// non-nested acquisition, early-unlock branches, goroutine bodies, and
// deferred calls. The lockorder analyzer must stay silent on all of it.
package lockorder_clean

import "sync"

type C struct {
	//ldclint:lockrank clean.outer 10
	outer sync.Mutex
	//ldclint:lockrank clean.inner 20
	inner sync.Mutex
	//ldclint:lockrank clean.leaf 30
	leaf sync.Mutex
}

// Ranks increase inward: 10 -> 20 directly, 20 -> 30 through a call.
func orderedNesting(c *C) {
	c.outer.Lock()
	defer c.outer.Unlock()
	c.inner.Lock()
	defer c.inner.Unlock()
	lockLeaf(c)
}

func lockLeaf(c *C) {
	c.leaf.Lock()
	c.leaf.Unlock()
}

// Sequential acquisition never holds two locks at once; no edges at all,
// whatever the order of the regions.
func sequential(c *C) {
	c.leaf.Lock()
	c.leaf.Unlock()
	c.outer.Lock()
	c.outer.Unlock()
}

// The early-return path drops outer before the error exit; the main path
// nests correctly.
func earlyUnlock(c *C, fail bool) {
	c.outer.Lock()
	if fail {
		c.outer.Unlock()
		return
	}
	c.inner.Lock()
	c.inner.Unlock()
	c.outer.Unlock()
}

// The goroutine body runs on its own schedule: it may take outer while the
// spawner still holds inner, and that is not an inner -> outer edge.
func spawns(c *C) {
	c.inner.Lock()
	defer c.inner.Unlock()
	go func() {
		c.outer.Lock()
		c.outer.Unlock()
	}()
}

// A deferred call executes with an unknowable lock set; grabOuter's
// acquisition must not be charged to the leaf-held region.
func deferred(c *C) {
	c.leaf.Lock()
	defer c.leaf.Unlock()
	defer grabOuter(c)
}

func grabOuter(c *C) {
	c.outer.Lock()
	c.outer.Unlock()
}
