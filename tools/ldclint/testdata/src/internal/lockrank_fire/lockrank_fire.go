// Package lockrank_fire seeds the annotation-discipline findings: an
// unranked mutex field in an internal/ package, a malformed lockrank
// directive, and a Rank() constructor call that disagrees with its field's
// annotation.
package lockrank_fire

import (
	"invariants"
	"sync"
)

type R struct {
	bare sync.Mutex // want `mutex field internal/lockrank_fire.R.bare has no //ldclint:lockrank annotation`

	// want(+1) `malformed //ldclint:lockrank directive: want //ldclint:lockrank <name> <rank>`
	//ldclint:lockrank broken
	bad sync.Mutex

	//ldclint:lockrank rankfire.good 10
	good sync.Mutex

	//ldclint:lockrank rankfire.r 30
	mu invariants.Mutex
}

func newR() *R {
	r := &R{}
	r.mu.Rank("rankfire.r", 31) // want `Rank\("rankfire.r", 31\) disagrees with the field's //ldclint:lockrank rankfire.r 30`
	return r
}
