// Package refpair_clean holds every sanctioned acquire/release shape; the
// refpair analyzer must stay silent on all of them.
package refpair_clean

import (
	"refs"
	"vlog"
)

type errFail struct{}

func (errFail) Error() string { return "fail" }

func consume(v *refs.Version) {}

type holder struct{ v *refs.Version }

// The straightforward pair.
func balanced(v *refs.Version) {
	v.Ref()
	v.Unref()
}

// A deferred release covers every subsequent exit.
func deferred(v *refs.Version, fail bool) error {
	v.Ref()
	defer v.Unref()
	if fail {
		return errFail{}
	}
	return nil
}

// Released on the error path, released on the main path.
func bothArms(s *refs.Set, fail bool) error {
	v := s.Current()
	if fail {
		v.Unref()
		return errFail{}
	}
	v.Unref()
	return nil
}

// Handoff by return: the caller inherits the reference.
func handoffReturn(s *refs.Set) *refs.Version {
	v := s.Current()
	return v
}

// Handoff by call: ownership demonstrably moves elsewhere.
func handoffCall(s *refs.Set) {
	v := s.Current()
	consume(v)
}

// Handoff by store into longer-lived structure.
func handoffStore(s *refs.Set, h *holder) {
	v := s.Current()
	h.v = v
}

// The nil-guard shape: nothing to release inside the nil arm.
func nilGuard(s *refs.Set) int {
	v := s.Current()
	if v == nil {
		return 0
	}
	v.Unref()
	return 1
}

// `if v != nil { release }` with no else: the skip path holds nil.
func nilGuardInverted(s *refs.Set) {
	v := s.Current()
	if v != nil {
		v.Unref()
	}
}

// Current on a type whose result has no release method is not an acquire;
// tracking it would flag arbitrary getters.
func notTracked(p *refs.Plain) {
	t := p.Current()
	t.Use()
}

// Deferred release of a pooled vlog reader (the resolve path's shape).
func vlogReaderDeferred(l *vlog.Log, fail bool) error {
	r := l.GetReader()
	defer r.Release()
	if fail {
		return errFail{}
	}
	return nil
}

// Released on both arms.
func vlogReaderBothArms(l *vlog.Log, fail bool) error {
	r := l.GetReader()
	if fail {
		r.Release()
		return errFail{}
	}
	r.Release()
	return nil
}
