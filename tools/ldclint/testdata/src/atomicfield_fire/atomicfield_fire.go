// Package atomicfield_fire seeds mixed plain/atomic accesses of the same
// struct field — the data race the atomicfield analyzer exists to catch.
package atomicfield_fire

import "sync/atomic"

type counters struct {
	n     int64 // accessed via atomic.AddInt64: function-style atomic field
	typed atomic.Int64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counters) plainRead() int64 {
	return c.n // want `plain read of field n, which is accessed via sync/atomic elsewhere`
}

func (c *counters) plainWrite() {
	c.n = 0 // want `plain write to field n, which is accessed via sync/atomic elsewhere`
}

func (c *counters) aliased() *int64 {
	p := &c.n // want `address of field n escapes sync/atomic`
	return p
}

func (c *counters) typedCopy() int64 {
	x := c.typed // want `field typed copied by value; atomic values must be used through their methods`
	return x.Load()
}

func (c *counters) typedOverwrite() {
	c.typed = atomic.Int64{} // want `plain write to field typed`
}
