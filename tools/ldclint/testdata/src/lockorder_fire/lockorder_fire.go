// Package lockorder_fire seeds every class of lockorder finding that rides
// on the acquisition graph: a direct rank inversion, the same inversion one
// call deep (reported at the call site), a cross-function cycle on unranked
// locks, and a direct re-lock self-deadlock.
package lockorder_fire

import "sync"

type S struct {
	//ldclint:lockrank fire.low 10
	low sync.Mutex
	//ldclint:lockrank fire.high 20
	high sync.Mutex

	//ldclint:lockrank fire.low2 11
	low2 sync.Mutex
	//ldclint:lockrank fire.high2 21
	high2 sync.Mutex

	// Unranked: only the cycle check applies to these.
	a sync.Mutex
	b sync.Mutex
}

// Direct inversion: rank 10 acquired inside rank 20.
func direct(s *S) {
	s.high.Lock()
	defer s.high.Unlock()
	s.low.Lock() // want `acquires fire.low \(rank 10\) while holding fire.high \(rank 20\)`
	s.low.Unlock()
}

// The same inversion one call deep: the witness is the call site, and the
// chain names the acquisition inside the callee.
func viaCall(s *S) {
	s.high2.Lock()
	defer s.high2.Unlock()
	lockLow2(s) // want `acquires fire.low2 \(rank 11\) while holding fire.high2 \(rank 21\).*calls lockorder_fire.lockLow2.*fire.low2 acquired at`
}

func lockLow2(s *S) {
	s.low2.Lock()
	s.low2.Unlock()
}

// a -> b here, b -> a below (through a call): a cross-function cycle with
// no consistent order. Reported once, at the earliest witnessing edge.
func lockBUnderA(s *S) {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-order cycle: lockorder_fire.S.a -> lockorder_fire.S.b -> lockorder_fire.S.a.*calls lockorder_fire.grabA.*lockorder_fire.S.a acquired at`
	s.b.Unlock()
}

func lockAUnderB(s *S) {
	s.b.Lock()
	defer s.b.Unlock()
	grabA(s)
}

func grabA(s *S) {
	s.a.Lock()
	s.a.Unlock()
}

// Re-locking a mutex this function already holds can never make progress.
func relock(s *S) {
	s.low.Lock()
	s.low.Lock() // want `fire.low locked again while already held.*self-deadlock`
	s.low.Unlock()
	s.low.Unlock()
}
