package main

// A miniature analysis framework (the shape of golang.org/x/tools/go/analysis,
// reduced to what five analyzers need — four intraprocedural and factless,
// plus lockorder, whose cross-package facts ride in Pass.locks), and the
// //ldclint:ignore directive machinery shared by all of them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers lists every check ldclint runs, in reporting order.
var Analyzers = []*Analyzer{
	mutexioAnalyzer,
	refpairAnalyzer,
	atomicfieldAnalyzer,
	errcloseAnalyzer,
	lockorderAnalyzer,
}

// Pass carries one package's worth of inputs to an analyzer and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// locks is the merged whole-program lock environment (this package's
	// summaries plus its dependencies' facts); nil when the caller has no
	// facts channel, in which case lockorder stands down.
	locks *lockEnv

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, formatted for the vet protocol.
type Diagnostic struct {
	Position token.Position
	Message  string
	// pos orders diagnostics deterministically.
	pos token.Pos
}

// Reportf records a finding unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(p.Analyzer.Name, position) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	*p.diags = append(*p.diags, Diagnostic{
		Position: position,
		Message:  fmt.Sprintf("%s: %s", p.Analyzer.Name, msg),
		pos:      pos,
	})
}

// runAnalyzers applies every analyzer to the package and returns the merged,
// position-sorted diagnostics. Malformed ignore directives are reported as
// findings in their own right so they cannot silently rot — and so is a
// well-formed directive that suppressed nothing: a stale ignore is a lie
// about which invariants the code still violates.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, locks *lockEnv) []Diagnostic {
	var diags []Diagnostic
	ignores, bad := buildIgnoreIndex(fset, files)
	for _, d := range bad {
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			locks:    locks,
			diags:    &diags,
			ignores:  ignores,
		}
		a.Run(pass)
	}
	for _, ds := range ignores {
		for _, d := range ds {
			if !d.used {
				diags = append(diags, Diagnostic{
					Position: d.position,
					Message:  fmt.Sprintf("ldclint:ignore for %q suppresses nothing (stale directive)", d.name),
					pos:      d.pos,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// ---------------------------------------------------------------------------
// Ignore directives

// ignoreDirective is the parsed form of
//
//	//ldclint:ignore <analyzer> <reason...>
//
// The directive suppresses findings of the named analyzer (or every
// analyzer, for the name "all") on the directive's own line and on the line
// directly below it — covering both trailing comments and comments placed
// above the flagged statement.
const ignorePrefix = "//ldclint:ignore"

type ignoreKey struct {
	file string
	line int
}

// ignoreDirective is one indexed directive; used flips when it suppresses a
// finding, so unused directives can be reported as stale afterwards.
type ignoreDirective struct {
	name     string // analyzer name ("all" matches any)
	pos      token.Pos
	position token.Position
	used     bool
}

type ignoreIndex map[ignoreKey][]*ignoreDirective

// covers reports whether a directive suppresses the finding, marking every
// matching directive as used.
func (ix ignoreIndex) covers(analyzer string, pos token.Position) bool {
	covered := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range ix[ignoreKey{pos.Filename, line}] {
			if d.name == analyzer || d.name == "all" {
				d.used = true
				covered = true
			}
		}
	}
	return covered
}

// buildIgnoreIndex scans every comment for directives. A directive missing
// its analyzer name or its reason is itself a diagnostic: an unexplained
// suppression is exactly the kind of invariant-in-prose this tool exists to
// eliminate.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Diagnostic) {
	ix := ignoreIndex{}
	var bad []Diagnostic
	known := map[string]bool{"all": true}
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				position := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Position: position,
						Message:  "ldclint:ignore directive needs an analyzer name and a reason",
						pos:      c.Pos(),
					})
					continue
				}
				if !known[fields[0]] {
					bad = append(bad, Diagnostic{
						Position: position,
						Message:  fmt.Sprintf("ldclint:ignore names unknown analyzer %q", fields[0]),
						pos:      c.Pos(),
					})
					continue
				}
				key := ignoreKey{position.Filename, position.Line}
				ix[key] = append(ix[key], &ignoreDirective{
					name:     fields[0],
					pos:      c.Pos(),
					position: position,
				})
			}
		}
	}
	return ix, bad
}

// ---------------------------------------------------------------------------
// Shared type helpers

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type of t (through pointers), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// typeFromPkg reports whether t (through pointers) is the named type
// pkg.name, where pkg matches by exact path or by "/pkg" suffix — so the
// real repro/internal/wal and a fixture package "wal" both match.
func typeFromPkg(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if name != "" && n.Obj().Name() != name {
		return false
	}
	return pkgPathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}

// pkgPathMatches reports whether a package path is the named package: an
// exact match or a path ending in "/<suffix>".
func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// recvType returns the type of a method call's receiver expression, or nil
// if call is not a selector-based method call.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// calleeName returns the method or function name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// exprKey renders an expression as a stable string key ("db.mu", "s.logMu")
// for matching Lock/Unlock and Ref/Unref receivers textually. Only chains of
// identifiers and field selections are rendered; anything else gets a
// position-unique key so distinct complex expressions never alias.
func exprKey(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(fset, e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(fset, e.X)
	case *ast.StarExpr:
		return exprKey(fset, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(fset, e.X)
		}
	}
	return fmt.Sprintf("@%v", fset.Position(e.Pos()))
}

// funcsOf yields every function body in the package: declarations and
// function literals, each paired with its name for messages. Literals are
// visited as independent functions (they run on their own schedule — often
// on another goroutine — so lock state never flows into them).
type funcBody struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func funcsOf(files []*ast.File) []funcBody {
	var out []funcBody
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcBody{name: fd.Name.Name, body: fd.Body, decl: fd})
			collectLits(fd.Body, fd.Name.Name, &out)
		}
	}
	return out
}

func collectLits(root ast.Node, outer string, out *[]funcBody) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			name := outer + ".func"
			*out = append(*out, funcBody{name: name, body: lit.Body})
			collectLits(lit.Body, name, out)
			return false
		}
		return true
	})
}

// callsIn yields the call expressions syntactically inside n, not descending
// into nested function literals (they are analyzed as their own functions).
func callsIn(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// terminates reports whether a statement list always transfers control out
// of the enclosing function (return, panic, or an unconditional
// continue/break/goto that leaves the straight-line path). It is a
// conservative syntactic check: anything unrecognized is "does not
// terminate".
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
