package main

// Unit tests for the directive machinery itself — the ignore index and the
// lockrank annotation parser — at a finer grain than the fixture suite:
// these feed sources straight to the parser and assert on the intermediate
// structures, so a regression pinpoints the broken stage rather than
// surfacing as a mysterious fixture diff.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// fakeSyncSrc keeps these tests hermetic: a structural stand-in for the two
// sync types the analyzers model, compiled on demand by checkPkg's importer.
const fakeSyncSrc = `package sync
type Mutex struct{ state int }
func (m *Mutex) Lock() {}
func (m *Mutex) Unlock() {}
type RWMutex struct{ state int }
func (m *RWMutex) Lock() {}
func (m *RWMutex) Unlock() {}
func (m *RWMutex) RLock() {}
func (m *RWMutex) RUnlock() {}
`

func checkPkg(t *testing.T, path string, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info) {
	t.Helper()
	info := newTypesInfo()
	conf := types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		if ip != "sync" {
			t.Fatalf("unexpected import %q", ip)
		}
		f, err := parser.ParseFile(fset, "fake_sync.go", fakeSyncSrc, 0)
		if err != nil {
			return nil, err
		}
		return (&types.Config{}).Check("sync", fset, []*ast.File{f}, nil)
	})}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, info
}

func TestBuildIgnoreIndex(t *testing.T) {
	src := `package p

func a() {
	//ldclint:ignore mutexio held deliberately
	_ = 1
}

func b() {
	_ = 2 //ldclint:ignore all everything sanctioned on this line
}

func c() {
	//ldclint:ignore errclose
	_ = 3
}

func d() {
	//ldclint:ignore nosuch a fine reason
	_ = 4
}
`
	fset, files := parseOne(t, src)
	ix, bad := buildIgnoreIndex(fset, files)

	// Two malformed directives: missing reason, unknown analyzer.
	if len(bad) != 2 {
		t.Fatalf("got %d bad directives, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "needs an analyzer name and a reason") {
		t.Errorf("bad[0] = %q, want missing-reason message", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, `unknown analyzer "nosuch"`) {
		t.Errorf("bad[1] = %q, want unknown-analyzer message", bad[1].Message)
	}

	// Two well-formed directives indexed, keyed by their own line.
	var names []string
	for _, ds := range ix {
		for _, d := range ds {
			names = append(names, d.name)
		}
	}
	if len(names) != 2 {
		t.Fatalf("indexed %d directives, want 2: %v", len(names), names)
	}
}

func TestIgnoreCoversOwnAndNextLine(t *testing.T) {
	src := `package p

func a() {
	//ldclint:ignore mutexio covers the next line
	_ = 1
}
`
	fset, files := parseOne(t, src)
	ix, _ := buildIgnoreIndex(fset, files)

	var dirPos token.Position
	for _, ds := range ix {
		dirPos = ds[0].position
	}
	sameLine := token.Position{Filename: dirPos.Filename, Line: dirPos.Line}
	nextLine := token.Position{Filename: dirPos.Filename, Line: dirPos.Line + 1}
	twoBelow := token.Position{Filename: dirPos.Filename, Line: dirPos.Line + 2}

	if !ix.covers("mutexio", sameLine) {
		t.Error("directive does not cover its own line")
	}
	if !ix.covers("mutexio", nextLine) {
		t.Error("directive does not cover the line below")
	}
	if ix.covers("mutexio", twoBelow) {
		t.Error("directive covers two lines below; it must not")
	}
	if ix.covers("errclose", nextLine) {
		t.Error("directive covers an analyzer it does not name")
	}
}

func TestIgnoreUsedFlag(t *testing.T) {
	src := `package p

func a() {
	//ldclint:ignore mutexio never matched
	_ = 1
}
`
	fset, files := parseOne(t, src)
	ix, _ := buildIgnoreIndex(fset, files)
	var d *ignoreDirective
	for _, ds := range ix {
		d = ds[0]
	}
	if d.used {
		t.Fatal("directive marked used before any covers call")
	}
	// A miss must not mark it used; a hit must.
	ix.covers("mutexio", token.Position{Filename: d.position.Filename, Line: d.position.Line + 5})
	if d.used {
		t.Error("non-covering query marked the directive used")
	}
	ix.covers("mutexio", d.position)
	if !d.used {
		t.Error("covering query did not mark the directive used")
	}
}

func TestLockrankAnnotationParsing(t *testing.T) {
	src := `package p

import "sync"

type s struct {
	//ldclint:lockrank good.name 42
	good sync.Mutex

	plain sync.Mutex

	//ldclint:lockrank broken
	bad1 sync.Mutex

	//ldclint:lockrank bad.rank notanumber
	bad2 sync.Mutex

	trailing sync.Mutex //ldclint:lockrank trail.name 7
}
`
	fset, files := parseOne(t, src)
	pkg, info := checkPkg(t, "dtest", fset, files)
	env := buildLockEnv(fset, files, pkg, info, nil)

	if got := len(env.malformed); got != 2 {
		t.Errorf("got %d malformed annotations, want 2 (missing rank, non-numeric rank)", got)
	}

	good := env.classes["dtest.s.good"]
	if good == nil || !good.Ranked || good.Name != "good.name" || good.Rank != 42 {
		t.Errorf("doc-comment annotation not parsed: %+v", good)
	}
	trail := env.classes["dtest.s.trailing"]
	if trail == nil || !trail.Ranked || trail.Name != "trail.name" || trail.Rank != 7 {
		t.Errorf("trailing-comment annotation not parsed: %+v", trail)
	}
	plain := env.classes["dtest.s.plain"]
	if plain == nil || plain.Ranked {
		t.Errorf("unannotated field should register an unranked class: %+v", plain)
	}

	// Package path "dtest" is not internal/: no undeclared findings even for
	// the bare field.
	if len(env.undeclared) != 0 {
		t.Errorf("non-internal package produced undeclared findings: %v", env.undeclared)
	}
}

func TestUndeclaredOnlyInInternalNonTest(t *testing.T) {
	src := `package p

import "sync"

type s struct {
	bare sync.Mutex
}
`
	fset, files := parseOne(t, src)
	pkg, info := checkPkg(t, "repro/internal/dtest", fset, files)
	env := buildLockEnv(fset, files, pkg, info, nil)
	if len(env.undeclared) != 1 {
		t.Fatalf("internal package: got %d undeclared, want 1", len(env.undeclared))
	}
	if env.undeclared[0].key != "repro/internal/dtest.s.bare" {
		t.Errorf("undeclared key = %q", env.undeclared[0].key)
	}
}

func TestStaleIgnoreReported(t *testing.T) {
	src := `package p

func a() {
	//ldclint:ignore mutexio nothing here fires anymore
	_ = 1
}
`
	fset, files := parseOne(t, src)
	pkg, info := checkPkg(t, "dtest", fset, files)
	diags := runAnalyzers(Analyzers, fset, files, pkg, info, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 stale-ignore: %v", len(diags), diags)
	}
	want := `ldclint:ignore for "mutexio" suppresses nothing (stale directive)`
	if diags[0].Message != want {
		t.Errorf("message = %q, want %q", diags[0].Message, want)
	}
}
