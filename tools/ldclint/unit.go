package main

// The cmd/go vettool protocol, implemented with the standard library only.
//
// For every package in the build graph, `go vet -vettool=ldclint` invokes
// the tool with one argument: a JSON config file naming the package's Go
// files and mapping each import path to the compiler export data of the
// dependency. Dependency packages are visited first with VetxOnly set: they
// exist to produce analysis "facts", which for ldclint are the lockorder
// analyzer's per-function lock summaries (lockorder.go). Each unit merges
// the facts of its direct imports with its own summaries and writes the
// union, so transitive summaries reach dependents without a global pass.
// Standard-library packages are skipped (empty facts): they carry no
// lockrank annotations and parsing GOROOT would only cost time.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
)

// vetConfig mirrors the fields of cmd/go's vet config (the same JSON
// unitchecker consumes); fields ldclint does not use are omitted —
// encoding/json ignores them.
type vetConfig struct {
	ID           string // package ID, e.g. "repro/internal/wal [repro/internal/wal.test]"
	Compiler     string // "gc"
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path in source → canonical package path
	PackageFile map[string]string // canonical package path → export data file
	Standard    map[string]bool   // canonical package path → is stdlib

	VetxOnly    bool              // just produce facts for dependents; don't report diagnostics
	VetxOutput  string            // where to write facts
	PackageVetx map[string]string // canonical package path → facts file of direct dependency

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by the config file and
// returns its diagnostics.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// Standard-library units produce empty facts without being parsed: std
	// declares no lockrank classes, and a missing or empty facts entry is
	// tolerated on the consuming side.
	if cfg.Standard[cfg.ImportPath] || cfg.ImportPath == "unsafe" {
		return nil, writeFacts(cfg.VetxOutput, []byte{})
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(cfg.VetxOutput, []byte{})
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path (already sent through ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(cfg.VetxOutput, []byte{})
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	deps, err := loadDepFacts(cfg.PackageVetx)
	if err != nil {
		return nil, err
	}
	env := buildLockEnv(fset, files, pkg, info, deps)
	facts, err := json.Marshal(env.facts())
	if err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	if err := writeFacts(cfg.VetxOutput, facts); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	return runAnalyzers(analyzers, fset, files, pkg, info, env), nil
}

// writeFacts satisfies the facts half of the protocol: cmd/go expects the
// file to exist after every invocation that names one.
func writeFacts(path string, data []byte) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("writing facts: %w", err)
	}
	return nil
}

// loadDepFacts reads the lock summaries of every direct dependency. Empty
// files (std units, typecheck-failure fallbacks) contribute nothing.
func loadDepFacts(vetx map[string]string) ([]*lockFacts, error) {
	paths := make([]string, 0, len(vetx))
	for p := range vetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var deps []*lockFacts
	for _, p := range paths {
		data, err := os.ReadFile(vetx[p])
		if err != nil || len(data) == 0 {
			continue // tolerated: std or facts-less dependency
		}
		var f lockFacts
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("parsing facts of %s: %w", p, err)
		}
		deps = append(deps, &f)
	}
	return deps, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
