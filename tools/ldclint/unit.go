package main

// The cmd/go vettool protocol, implemented with the standard library only.
//
// For every package in the build graph, `go vet -vettool=ldclint` invokes
// the tool with one argument: a JSON config file naming the package's Go
// files and mapping each import path to the compiler export data of the
// dependency. Dependency packages are visited first with VetxOnly set (they
// exist only to produce analysis "facts"); ldclint's analyzers are all
// intraprocedural and factless, so those invocations just write an empty
// facts file and exit.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// vetConfig mirrors the fields of cmd/go's vet config (the same JSON
// unitchecker consumes); fields ldclint does not use are omitted —
// encoding/json ignores them.
type vetConfig struct {
	ID           string // package ID, e.g. "repro/internal/wal [repro/internal/wal.test]"
	Compiler     string // "gc"
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path in source → canonical package path
	PackageFile map[string]string // canonical package path → export data file
	Standard    map[string]bool   // canonical package path → is stdlib

	VetxOnly   bool   // just produce facts for dependents; don't report diagnostics
	VetxOutput string // where to write facts

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by the config file and
// returns its diagnostics.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// Facts protocol: cmd/go expects the facts file to exist afterwards,
	// even though ldclint produces none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path (already sent through ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	return runAnalyzers(analyzers, fset, files, pkg, info), nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
