package main

// errclose flags silently dropped errors from the durability-critical
// resource methods: Close/Sync/Flush/Finish on WAL writers, SSTable
// readers/writers, vfs files, and network connections/listeners. A WAL
// Sync whose error vanishes is a lost-durability bug; a dropped SSTable
// Close can hide a failed table write until recovery.
//
// Scope is deliberately narrow — only receivers from the wal, sstable, and
// vfs packages and from net are checked, so the idiomatic dropped Close on
// application-level objects (db.Close() in a test teardown) stays legal.
//
// Two drop forms are exempt by policy (documented in DESIGN.md):
//
//   - deferred calls: `defer f.Close()` on a read-only handle is
//     conventional, and Go provides no ergonomic way to route the error;
//   - explicit discards: `_ = f.Close()` states intent and is the
//     sanctioned way to mark a genuinely ignorable drop (e.g. cleanup of a
//     file that failed to open).

import (
	"go/ast"
	"go/types"
)

var errcloseAnalyzer = &Analyzer{
	Name: "errclose",
	Doc:  "reports dropped errors from Close/Sync/Flush on WAL, SSTable, vfs, and net types",
	Run:  runErrclose,
}

var errcloseMethods = map[string]bool{
	"Close": true, "Sync": true, "Flush": true, "Finish": true,
}

// errclosePackages are matched by exact path or "/name" suffix, so both
// repro/internal/wal and a fixture package "wal" qualify.
var errclosePackages = []string{"wal", "sstable", "vfs", "net", "vlog"}

func runErrclose(pass *Pass) {
	for _, fn := range funcsOf(pass.Files) {
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // visited as its own funcBody
			}
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc := errcloseTarget(pass, call); desc != "" {
				pass.Reportf(call.Pos(),
					"error from %s is dropped; handle it, or discard explicitly with `_ =` if truly ignorable",
					desc)
			}
			return true
		})
	}
}

// errcloseTarget describes the call if it is an in-scope resource-release
// method whose error result is being dropped, else "".
func errcloseTarget(pass *Pass, call *ast.CallExpr) string {
	name := calleeName(call)
	if !errcloseMethods[name] {
		return ""
	}
	recv := recvType(pass.Info, call)
	n := namedOf(recv)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	pkg := n.Obj().Pkg().Path()
	inScope := false
	for _, p := range errclosePackages {
		if pkgPathMatches(pkg, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return ""
	}
	if !returnsError(pass, call) {
		return ""
	}
	return "(" + shortPkg(pkg) + "." + n.Obj().Name() + ")." + name
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[ast.Expr(call)]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
