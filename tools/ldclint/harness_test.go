package main

// Tests for the `// want` fixture harness itself. The harness is the oracle
// every fixture truth-claim rests on, so its parsing corners — several
// patterns on one line, double-quoted vs backquoted arguments, the (+N)/(−N)
// offset form — get direct coverage instead of being trusted by induction
// from passing fixtures.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// wantsOf runs collectWants over a single source string and flattens the
// result to line → patterns.
func wantsOf(t *testing.T, src string) map[int][]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "h_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, fset, []*ast.File{f})
	out := map[int][]string{}
	for k, res := range wants {
		for _, re := range res {
			out[k.line] = append(out[k.line], re.String())
		}
	}
	return out
}

func TestCollectWantsMultipleArgsOneLine(t *testing.T) {
	src := "package p\n\nvar x = 1 // want `first pattern` `second pattern`\n"
	wants := wantsOf(t, src)
	if got := wants[3]; len(got) != 2 || got[0] != "first pattern" || got[1] != "second pattern" {
		t.Errorf("line 3 wants = %v, want two backquoted patterns", got)
	}
}

func TestCollectWantsMixedQuoting(t *testing.T) {
	// A double-quoted argument is unquoted (so \" and \\ resolve) before
	// regexp compilation; a backquoted one is taken verbatim.
	src := "package p\n\nvar x = 1 // want \"escaped \\\"quote\\\"\" `raw (pattern)`\n"
	wants := wantsOf(t, src)
	got := wants[3]
	if len(got) != 2 {
		t.Fatalf("line 3 wants = %v, want 2 patterns", got)
	}
	if got[0] != `escaped "quote"` {
		t.Errorf("double-quoted arg = %q, want unquoted form", got[0])
	}
	if got[1] != "raw (pattern)" {
		t.Errorf("backquoted arg = %q, want verbatim form", got[1])
	}
}

func TestCollectWantsOffsets(t *testing.T) {
	src := `package p

// want(+2) ` + "`lands two lines down`" + `
var a = 1
var b = 2 // want(-1) ` + "`lands one line up`" + `
`
	wants := wantsOf(t, src)
	if got := wants[5]; len(got) != 1 || got[0] != "lands two lines down" {
		t.Errorf("want(+2) landed at %v; line 5 = %v", wants, got)
	}
	if got := wants[4]; len(got) != 1 || got[0] != "lands one line up" {
		t.Errorf("want(-1) landed at %v; line 4 = %v", wants, got)
	}
}

func TestCollectWantsIgnoresNonWantComments(t *testing.T) {
	src := `package p

// wanton destruction is not a want comment
var a = 1 // neither is this, nor is "want" in prose
`
	if wants := wantsOf(t, src); len(wants) != 0 {
		t.Errorf("collected wants from non-want comments: %v", wants)
	}
}

func TestRunFixtureUnknownAnalyzerSelfDiagnostic(t *testing.T) {
	// The ignores fixture carries the self-diagnostic cases (missing reason,
	// unknown analyzer, stale directive); this pins that its wants stay
	// matched — the harness run is the assertion.
	runFixture(t, "ignores")
}
