package main

// atomicfield enforces the publication rule behind the lock-free read path:
// a struct field that is ever accessed through sync/atomic must never be
// read or written plainly — mixed access is a data race the moment the
// plain access happens off the owning goroutine, and it defeats the
// happens-before edges the atomic side is paying for.
//
// Two styles of atomic use are recognized:
//
//   - function style: atomic.LoadInt64(&x.f), atomic.AddInt64(&x.f, 1), …
//     Any other appearance of x.f in the package (read, write, or aliasing
//     &x.f that is not an atomic call argument) is flagged.
//   - typed style: a field of type atomic.Int64 / atomic.Pointer[T] / … .
//     Method calls (x.f.Load()) are the only legal use; assigning the field
//     (x.f = y) or copying it out (y := x.f) is flagged. Taking its address
//     is allowed — passing *atomic.Int64 around is how the typed API is
//     meant to be shared.
//
// Constructor code is exempt: functions named init or New*/new* build
// objects no other goroutine can see yet, where plain initialization of a
// function-style atomic field is conventional.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// addrOp is the address-of operator.
const addrOp = token.AND

var atomicfieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "reports plain reads/writes of struct fields that are elsewhere accessed atomically",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) {
	// Pass 1: find fields published through function-style sync/atomic calls.
	funcStyle := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if fv := addressedField(pass, arg); fv != nil {
					funcStyle[fv] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag non-atomic uses of those fields, and plain assignment or
	// copy of typed-atomic fields.
	for _, f := range pass.Files {
		v := &atomicVisitor{pass: pass, funcStyle: funcStyle}
		v.file(f)
	}
}

type atomicVisitor struct {
	pass      *Pass
	funcStyle map[*types.Var]bool
}

func (v *atomicVisitor) file(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if isConstructorName(fd.Name.Name) {
			continue
		}
		v.walk(fd.Body, nil)
	}
}

// walk visits expressions keeping a parent chain, so a selector's use site
// (atomic call argument, method receiver, plain read) can be classified.
func (v *atomicVisitor) walk(n ast.Node, parents []ast.Node) {
	if n == nil {
		return
	}
	if sel, ok := n.(*ast.SelectorExpr); ok {
		if fv := v.fieldOf(sel); fv != nil {
			v.checkUse(sel, fv, parents)
			// Still descend: x.f where x is itself a flagged field chain.
		}
	}
	parents = append(parents, n)
	for _, child := range childNodes(n) {
		v.walk(child, parents)
	}
}

// fieldOf resolves a selector to a struct field variable, or nil.
func (v *atomicVisitor) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := v.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := s.Obj().(*types.Var)
	return fv
}

func (v *atomicVisitor) checkUse(sel *ast.SelectorExpr, fv *types.Var, parents []ast.Node) {
	isFuncStyle := v.funcStyle[fv]
	isTyped := isAtomicType(fv.Type())
	if !isFuncStyle && !isTyped {
		return
	}

	// Classify by the immediate parents.
	var p1, p2 ast.Node
	if len(parents) > 0 {
		p1 = parents[len(parents)-1]
	}
	if len(parents) > 1 {
		p2 = parents[len(parents)-2]
	}

	// &x.f — legal when the address feeds a sync/atomic call (function
	// style) or is shared as *atomic.T (typed style).
	if ue, ok := p1.(*ast.UnaryExpr); ok && ue.Op == addrOp && ue.X == ast.Expr(sel) {
		if isTyped {
			return
		}
		if call, ok := p2.(*ast.CallExpr); ok && isAtomicFuncCall(v.pass, call) {
			return
		}
		v.pass.Reportf(sel.Pos(),
			"address of %s escapes sync/atomic; this field is atomically accessed and must not be aliased plainly",
			fieldDesc(fv))
		return
	}

	// x.f.Load() — the selector as a method-call receiver base: legal for
	// typed atomics.
	if outer, ok := p1.(*ast.SelectorExpr); ok && outer.X == ast.Expr(sel) {
		if isTyped {
			return // x.f.Load / x.f.Store / ... (method use checked by the compiler)
		}
	}

	// x.f[i] on an array of atomics: indexing an addressable array does not
	// copy the element — x.f[i].Add(1) is the canonical typed-array idiom.
	// Copying the *element* out (y := x.f[i]) is still flagged.
	if ix, ok := p1.(*ast.IndexExpr); ok && ix.X == ast.Expr(sel) && isTyped {
		if outer, ok := p2.(*ast.SelectorExpr); ok && outer.X == ast.Expr(ix) {
			return // x.f[i].Load / .Store / .Add ...
		}
		if ue, ok := p2.(*ast.UnaryExpr); ok && ue.Op == addrOp && ue.X == ast.Expr(ix) {
			return // &x.f[i] shared as *atomic.T
		}
		v.pass.Reportf(sel.Pos(),
			"element of %s copied by value; atomic values must be used through their methods, not copied",
			fieldDesc(fv))
		return
	}

	// Remaining uses are plain reads or writes.
	if isWrite(sel, parents) {
		v.pass.Reportf(sel.Pos(),
			"plain write to %s, which is accessed via sync/atomic elsewhere; use the atomic API on every access",
			fieldDesc(fv))
		return
	}
	if isTyped {
		v.pass.Reportf(sel.Pos(),
			"%s copied by value; atomic values must be used through their methods, not copied",
			fieldDesc(fv))
		return
	}
	v.pass.Reportf(sel.Pos(),
		"plain read of %s, which is accessed via sync/atomic elsewhere; use the atomic API on every access",
		fieldDesc(fv))
}

// isWrite reports whether sel is the target of an assignment or inc/dec.
func isWrite(sel *ast.SelectorExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == ast.Expr(sel)
	}
	return false
}

func fieldDesc(fv *types.Var) string {
	return "field " + fv.Name()
}

// isAtomicFuncCall reports a call to a function in package sync/atomic
// (Load*/Store*/Add*/Swap*/CompareAndSwap*).
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pkgName.Imported().Path() == "sync/atomic"
}

// addressedField unwraps &x.f to the field variable of x.f.
func addressedField(pass *Pass, arg ast.Expr) *types.Var {
	ue, ok := arg.(*ast.UnaryExpr)
	if !ok || ue.Op != addrOp {
		return nil
	}
	sel, ok := ue.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := s.Obj().(*types.Var)
	return fv
}

// isAtomicType reports a type from package sync/atomic (atomic.Int64,
// atomic.Pointer[T], …), possibly inside an array (buckets [n]atomic.Int64).
func isAtomicType(t types.Type) bool {
	if arr, ok := t.(*types.Array); ok {
		t = arr.Elem()
	}
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

func isConstructorName(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// childNodes lists a node's immediate children (ast.Inspect cannot easily
// provide parents, so the visitor walks manually via a generic fan-out).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
