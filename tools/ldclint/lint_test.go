package main

// Fixture-driven analyzer regression tests: a stdlib-only analogue of
// golang.org/x/tools' analysistest. Each package under testdata/src is
// parsed and type-checked hermetically — fixtures import fake lookalikes of
// sync, sync/atomic, net, wal, vfs, and sstable that live in the same tree,
// so the tests need no compiled stdlib export data and no network.
//
// Expectations are `// want "regexp"` comments: every diagnostic reported on
// a line must match a want on that line, and every want must be matched.
// A want may target a nearby line with an offset — `// want(+2) "re"` — for
// diagnostics anchored to lines that cannot carry a trailing comment (e.g.
// malformed //ldclint:ignore directives, which would swallow the want text).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestAnalyzersOnFixtures(t *testing.T) {
	pkgs := []string{
		"mutexio_fire", "mutexio_clean",
		"mutexio_iosched_fire", "mutexio_iosched_clean",
		"mutexio_wrapped_fire", "mutexio_wrapped_clean",
		"refpair_fire", "refpair_clean",
		"atomicfield_fire", "atomicfield_clean",
		"errclose_fire", "errclose_clean",
		"lockorder_fire", "lockorder_clean",
		"lockorder_xdep", "lockorder_xfire",
		"internal/lockrank_fire",
		"ignores",
	}
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) { runFixture(t, pkg) })
	}
}

// TestFirePackagesActuallyFire guards against a regression that silences an
// analyzer entirely while its fixture wants rot in lockstep: each seeded
// package must produce at least two findings from its own analyzer.
func TestFirePackagesActuallyFire(t *testing.T) {
	for _, tc := range []struct{ pkg, analyzer string }{
		{"mutexio_fire", "mutexio"},
		{"mutexio_iosched_fire", "mutexio"},
		{"mutexio_wrapped_fire", "mutexio"},
		{"refpair_fire", "refpair"},
		{"atomicfield_fire", "atomicfield"},
		{"errclose_fire", "errclose"},
		{"lockorder_fire", "lockorder"},
		{"internal/lockrank_fire", "lockorder"},
	} {
		diags := analyzeFixture(t, tc.pkg)
		n := 0
		for _, d := range diags {
			if strings.HasPrefix(d.Message, tc.analyzer+":") {
				n++
			}
		}
		if n < 2 {
			t.Errorf("%s: got %d %s findings, want at least 2", tc.pkg, n, tc.analyzer)
		}
	}
}

// TestCleanPackagesStaySilent asserts the clean fixtures produce nothing at
// all — the false-positive budget for sanctioned shapes is zero.
func TestCleanPackagesStaySilent(t *testing.T) {
	for _, pkg := range []string{
		"mutexio_clean", "mutexio_iosched_clean", "mutexio_wrapped_clean",
		"refpair_clean", "atomicfield_clean", "errclose_clean",
		"lockorder_clean", "lockorder_xdep",
	} {
		if diags := analyzeFixture(t, pkg); len(diags) != 0 {
			for _, d := range diags {
				t.Errorf("%s: unexpected %s: %s", pkg, d.Position, d.Message)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fixture loading

// fixtureLoader parses and type-checks fixture packages on demand,
// resolving their imports recursively within testdata/src.
type fixtureLoader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	env   *lockEnv
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return &fixtureLoader{fset: token.NewFileSet(), root: root, pkgs: map[string]*fixturePkg{}}
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	conf := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			dep, err := l.load(ip)
			if err != nil {
				return nil, err
			}
			return dep.pkg, nil
		}),
	}
	info := newTypesInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	// Mirror the vet facts protocol in-memory: each package's lock
	// environment merges the facts of its direct imports, which already
	// carry their own dependencies transitively.
	var deps []*lockFacts
	for _, imp := range pkg.Imports() {
		if d := l.pkgs[imp.Path()]; d != nil && d.env != nil {
			deps = append(deps, d.env.facts())
		}
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	p.env = buildLockEnv(l.fset, files, pkg, info, deps)
	l.pkgs[path] = p
	return p, nil
}

func analyzeFixture(t *testing.T, path string) []Diagnostic {
	t.Helper()
	l := newFixtureLoader(t)
	p, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	return runAnalyzers(Analyzers, l.fset, p.files, p.pkg, p.info, p.env)
}

// ---------------------------------------------------------------------------
// Want-comment matching

var wantRe = regexp.MustCompile("// want(\\([+-][0-9]+\\))?((?: `[^`]*`| \"(?:[^\"\\\\]|\\\\.)*\")+)")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type wantKey struct {
	file string
	line int
}

// collectWants scans a package's comments for want expectations, keyed by
// the line the expectation targets.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(strings.Trim(m[1], "()"))
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				for _, arg := range wantArgRe.FindAllString(m[2], -1) {
					var pattern string
					if arg[0] == '`' {
						pattern = arg[1 : len(arg)-1]
					} else {
						var err error
						pattern, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[wantKey{pos.Filename, line}] = append(wants[wantKey{pos.Filename, line}], re)
				}
			}
		}
	}
	return wants
}

// runFixture analyzes one package and reconciles diagnostics with wants.
func runFixture(t *testing.T, path string) {
	t.Helper()
	l := newFixtureLoader(t)
	p, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags := runAnalyzers(Analyzers, l.fset, p.files, p.pkg, p.info, p.env)
	wants := collectWants(t, l.fset, p.files)

	matched := map[wantKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := wantKey{d.Position.Filename, d.Position.Line}
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", d.Position, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
