package main

// lockorder is the whole-program half of the lock discipline (the runtime
// half is internal/invariants' -tags invariants lock-rank tracker). Per
// package it summarizes every function — which lock classes it acquires,
// which locks are held at each call site, which functions it calls — and
// serializes the summaries as "facts" through the vet protocol (see
// unit.go). Analyzing a package, it merges the facts of its dependencies,
// propagates acquisitions over the call graph to a fixpoint, and reports:
//
//   - lock-order cycles (potential deadlocks), once per strongly connected
//     component, with the full witness chain of file:line acquisition sites
//   - acquisitions contradicting the declared ranking: a lock acquired
//     while a lock of equal or higher rank is held
//   - mutex fields in internal/ packages with no declared rank
//   - invariants.Mutex Rank() calls that disagree with the field annotation
//   - direct re-acquisition of a held mutex (self-deadlock)
//
// Ranks are declared on the mutex field:
//
//	//ldclint:lockrank <name> <rank>
//
// and must strictly increase inward (outermost lock = lowest rank); the
// full catalog lives in DESIGN.md's "Lock order" section.
//
// Deliberate blind spots, shared with any static lockdep: calls through
// interfaces and function values are unresolvable (the stall controller's
// and commit pipeline's callbacks are invisible — the runtime tracker
// covers those paths); goroutine bodies and function literals start with an
// empty held set (they run on their own schedule); deferred calls are
// propagated but contribute no held-at-call edge (the lock set at defer
// execution is unknowable); and a function that unlocks its caller's mutex
// and re-locks it (the *Locked pattern) produces a same-class edge, which
// is skipped.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "builds the whole-program lock acquisition graph and reports order cycles and rank violations",
	Run:  runLockorder,
}

// lockrankPrefix is the annotation declaring a mutex field's class name and
// rank: //ldclint:lockrank <name> <rank>
const lockrankPrefix = "//ldclint:lockrank"

// ---------------------------------------------------------------------------
// Facts: the serialized per-package summaries flowing through the vet
// protocol. Positions are "file:line" strings so they survive JSON and read
// well in diagnostics. Each package writes the merged facts of itself and
// its dependencies, so transitive summaries reach dependents through direct
// imports alone.

type lockFacts struct {
	Classes map[string]*lockClass   `json:"classes,omitempty"`
	Funcs   map[string]*funcSummary `json:"funcs,omitempty"`
}

// lockClass is one mutex class: a struct field (keyed "pkgpath.Type.field")
// or a package-level var (keyed "pkgpath.name").
type lockClass struct {
	Key     string `json:"key"`
	Name    string `json:"name,omitempty"` // annotation name; "" = unranked
	Rank    int    `json:"rank,omitempty"`
	Ranked  bool   `json:"ranked,omitempty"`
	DeclPos string `json:"declPos,omitempty"`
}

// heldRef is one lock held at an acquisition or call site.
type heldRef struct {
	Class string `json:"class"`
	Pos   string `json:"pos"` // file:line of its Lock
}

type acqRec struct {
	Class string    `json:"class"`
	Pos   string    `json:"pos"`
	Held  []heldRef `json:"held,omitempty"`

	tok token.Pos // valid only for the package being analyzed
}

type callRec struct {
	Callee string    `json:"callee"`
	Pos    string    `json:"pos"`
	Held   []heldRef `json:"held,omitempty"`

	tok token.Pos
}

type funcSummary struct {
	ID       string    `json:"id"`
	Acquires []acqRec  `json:"acquires,omitempty"`
	Calls    []callRec `json:"calls,omitempty"`
}

// ---------------------------------------------------------------------------
// lockEnv: the merged environment one unit analyzes against.

type lockEnv struct {
	fset    *token.FileSet
	classes map[string]*lockClass
	funcs   map[string]*funcSummary
	ownIDs  map[string]bool // summaries of the package being analyzed

	// Findings collected during the scan, reported by runLockorder so the
	// ignore machinery applies.
	malformed  []token.Pos
	undeclared []undeclRec
	mismatches []rankMismatch
	selfLocks  []selfLockRec
}

type undeclRec struct {
	pos token.Pos
	key string
}

type rankMismatch struct {
	pos   token.Pos
	name  string
	rank  int
	class *lockClass
}

type selfLockRec struct {
	pos      token.Pos
	class    string
	firstPos string
}

// facts returns the environment's serializable form: the merged classes and
// summaries of this package and everything below it.
func (env *lockEnv) facts() *lockFacts {
	return &lockFacts{Classes: env.classes, Funcs: env.funcs}
}

// display names a class: the annotation name when ranked, the key otherwise.
func (env *lockEnv) display(key string) string {
	if c := env.classes[key]; c != nil && c.Name != "" {
		return c.Name
	}
	return key
}

// buildLockEnv summarizes one package against its dependencies' facts. The
// invariants package itself is exempt: its wrapper types and tracker state
// are the mechanism, not subjects of the discipline.
func buildLockEnv(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps []*lockFacts) *lockEnv {
	env := &lockEnv{
		fset:    fset,
		classes: map[string]*lockClass{},
		funcs:   map[string]*funcSummary{},
		ownIDs:  map[string]bool{},
	}
	for _, d := range deps {
		for k, c := range d.Classes {
			env.classes[k] = c
		}
		for k, f := range d.Funcs {
			env.funcs[k] = f
		}
	}
	if pkg == nil || pkgPathMatches(pkg.Path(), "invariants") {
		return env
	}
	env.scanClasses(files, pkg, info)
	env.scanRankCalls(files, info)
	for _, fn := range funcsOf(files) {
		id := funcID(fset, pkg, info, fn)
		if id == "" {
			continue
		}
		w := &loWalker{env: env, fset: fset, info: info, sum: &funcSummary{ID: id}}
		w.walk(fn.body.List, map[string]loHeld{})
		env.funcs[id] = w.sum
		env.ownIDs[id] = true
	}
	return env
}

// funcID names a function for the call graph: types.Func.FullName for
// declarations, a position-qualified synthetic name for literals (they are
// summarized as roots but are never callees).
func funcID(fset *token.FileSet, pkg *types.Package, info *types.Info, fn funcBody) string {
	if fn.decl != nil {
		if obj, ok := info.Defs[fn.decl.Name].(*types.Func); ok {
			return obj.FullName()
		}
		return ""
	}
	return pkg.Path() + "." + fn.name + "@" + shortPos(fset, fn.body.Pos())
}

// shortPos renders a position as "file.go:line" — stable across build
// directories and compact in diagnostics.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---------------------------------------------------------------------------
// Class discovery and annotation parsing

// scanClasses registers a lock class for every mutex-typed struct field and
// parses its //ldclint:lockrank annotation. Unannotated mutex fields in
// internal/ packages (outside test files) are recorded as undeclared: every
// production lock must state where it sits in the order.
func (env *lockEnv) scanClasses(files []*ast.File, pkg *types.Package, info *types.Info) {
	internal := strings.Contains(pkg.Path(), "internal/")
	for _, f := range files {
		fname := env.fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				env.scanField(pkg, info, ts.Name.Name, field, internal && !isTest)
			}
			return true
		})
	}
}

func (env *lockEnv) scanField(pkg *types.Package, info *types.Info, typeName string, field *ast.Field, wantRank bool) {
	mutexField := isMutex(info.TypeOf(field.Type))
	var names []string
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	if len(names) == 0 {
		if n := embeddedName(field.Type); n != "" {
			names = []string{n}
		} else {
			return
		}
	}

	// Parse the annotation from the field's doc or trailing comment.
	var annName string
	var annRank int
	annotated, ranked := false, false
	var groups []*ast.CommentGroup
	if field.Doc != nil {
		groups = append(groups, field.Doc)
	}
	if field.Comment != nil {
		groups = append(groups, field.Comment)
	}
	for _, cg := range groups {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, lockrankPrefix) {
				continue
			}
			annotated = true
			parts := strings.Fields(strings.TrimPrefix(c.Text, lockrankPrefix))
			rank, err := 0, error(nil)
			if len(parts) == 2 {
				rank, err = strconv.Atoi(parts[1])
			}
			if len(parts) != 2 || err != nil {
				env.malformed = append(env.malformed, c.Pos())
				continue
			}
			annName, annRank, ranked = parts[0], rank, true
		}
	}

	for _, name := range names {
		key := pkg.Path() + "." + typeName + "." + name
		c := &lockClass{Key: key, DeclPos: shortPos(env.fset, field.Pos())}
		if ranked {
			c.Name, c.Rank, c.Ranked = annName, annRank, true
		}
		env.classes[key] = c
		if mutexField && !annotated && wantRank {
			env.undeclared = append(env.undeclared, undeclRec{pos: field.Pos(), key: key})
		}
	}
}

// embeddedName returns the field name of an embedded type.
func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// scanRankCalls cross-checks invariants.Mutex Rank() constructor calls
// against the field annotations: the runtime tracker and the static
// analyzer must be validating the same order.
func (env *lockEnv) scanRankCalls(files []*ast.File, info *types.Info) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "Rank" || len(call.Args) != 2 {
				return true
			}
			recv := recvType(info, call)
			if recv == nil || !isInvariantsMutex(recv) {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			class := env.classes[classOfExpr(info, sel.X)]
			if class == nil || !class.Ranked {
				return true
			}
			nameVal := info.Types[call.Args[0]].Value
			rankVal := info.Types[call.Args[1]].Value
			if nameVal == nil || rankVal == nil ||
				nameVal.Kind() != constant.String || rankVal.Kind() != constant.Int {
				return true
			}
			name := constant.StringVal(nameVal)
			rank64, _ := constant.Int64Val(rankVal)
			if name != class.Name || int(rank64) != class.Rank {
				env.mismatches = append(env.mismatches, rankMismatch{
					pos: call.Pos(), name: name, rank: int(rank64), class: class,
				})
			}
			return true
		})
	}
}

func isInvariantsMutex(t types.Type) bool {
	return typeFromPkg(t, "invariants", "Mutex") || typeFromPkg(t, "invariants", "RWMutex")
}

// classOfExpr resolves a mutex expression ("db.mu", "s.shards[i].mu", a
// package-level var) to its class key, or "" for locals and anything too
// dynamic to name.
func classOfExpr(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return classOfExpr(info, e.X)
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return classOfSelection(s)
		}
		// Qualified reference to another package's var: pkg.Mu.
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

func isPkgLevel(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// classOfSelection names the struct that declares the selected field —
// walking the embedding path so a field promoted through an embedded struct
// is attributed to its true owner.
func classOfSelection(s *types.Selection) string {
	obj, ok := s.Obj().(*types.Var)
	if !ok || !obj.IsField() {
		return ""
	}
	cur := s.Recv()
	idx := s.Index()
	for i := 0; i < len(idx)-1; i++ {
		st, ok := deref(cur).Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		cur = st.Field(idx[i]).Type()
	}
	n := namedOf(cur)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + obj.Name()
}

// ---------------------------------------------------------------------------
// Per-function summarization: the same conservative branch-merging walk as
// mutexio, but recording class-resolved acquisitions and call sites instead
// of checking I/O.

type loHeld struct {
	class string
	pos   string // shortPos of the acquisition
}

type loWalker struct {
	env  *lockEnv
	fset *token.FileSet
	info *types.Info
	sum  *funcSummary
}

func (w *loWalker) heldRefs(held map[string]loHeld) []heldRef {
	var out []heldRef
	for _, h := range held {
		if h.class != "" {
			out = append(out, heldRef{Class: h.class, Pos: h.pos})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

func (w *loWalker) walk(stmts []ast.Stmt, held map[string]loHeld) map[string]loHeld {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *loWalker) walkStmt(s ast.Stmt, held map[string]loHeld) map[string]loHeld {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, recv, delta, ok := classifyLockCall(w.info, w.fset, call); ok {
				if delta > 0 {
					w.acquire(key, recv, call, held)
				} else {
					delete(held, key)
				}
				return held
			}
		}
		w.recordCalls(s, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() pins the region to function exit. Any other
		// deferred call runs with an unknowable lock set, so it is recorded
		// with no held context — its acquisitions still propagate to
		// callers — while its argument expressions (evaluated now) are
		// recorded against the current set.
		if _, _, delta, ok := classifyLockCall(w.info, w.fset, s.Call); ok && delta < 0 {
			return held
		}
		w.recordCall(s.Call, map[string]loHeld{})
		for _, arg := range s.Call.Args {
			w.recordCalls(arg, held)
		}

	case *ast.GoStmt:
		// The spawned call runs on another goroutine with nothing held;
		// only its argument evaluation happens here. No call record: the
		// caller's locks impose no order on the goroutine's acquisitions.
		for _, arg := range s.Call.Args {
			w.recordCalls(arg, held)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.recordCalls(s.Cond, held)
		bodyHeld := w.walk(s.Body.List, cloneHeld(held))
		elseHeld := held
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseHeld = w.walk(e.List, cloneHeld(held))
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseHeld = w.walkStmt(e, cloneHeld(held))
		}
		bodyTerm := terminates(s.Body.List)
		switch {
		case bodyTerm && elseTerm:
			return map[string]loHeld{}
		case bodyTerm:
			return elseHeld
		case elseTerm:
			return bodyHeld
		default:
			return intersectHeld(bodyHeld, elseHeld)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.recordCalls(s.Cond, held)
		}
		body := w.walk(s.Body.List, cloneHeld(held))
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		return intersectHeld(held, body)

	case *ast.RangeStmt:
		w.recordCalls(s.X, held)
		body := w.walk(s.Body.List, cloneHeld(held))
		return intersectHeld(held, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, held)

	case *ast.BlockStmt:
		return w.walk(s.List, held)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)

	default:
		w.recordCalls(s, held)
	}
	return held
}

func (w *loWalker) walkCases(s ast.Stmt, held map[string]loHeld) map[string]loHeld {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.recordCalls(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.recordCalls(s.Assign, held)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var exits []map[string]loHeld
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.recordCalls(e, held)
			}
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, cloneHeld(held))
			} else {
				hasDefault = true
			}
			list = c.Body
		}
		if terminates(list) {
			w.walk(list, cloneHeld(held))
			continue
		}
		exits = append(exits, w.walk(list, cloneHeld(held)))
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	if len(exits) == 0 {
		return map[string]loHeld{}
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectHeld(out, e)
	}
	return out
}

// acquire handles a Lock/RLock call: a direct re-lock of a held expression
// is a self-deadlock; otherwise the lock joins the held set and, when its
// class is known, an acquisition record is emitted with the current set.
func (w *loWalker) acquire(key string, recv ast.Expr, call *ast.CallExpr, held map[string]loHeld) {
	class := classOfExpr(w.info, recv)
	if prev, ok := held[key]; ok {
		w.env.selfLocks = append(w.env.selfLocks, selfLockRec{
			pos:      call.Pos(),
			class:    classOrKey(class, key),
			firstPos: prev.pos,
		})
		return
	}
	pos := shortPos(w.fset, call.Pos())
	if class != "" {
		w.sum.Acquires = append(w.sum.Acquires, acqRec{
			Class: class,
			Pos:   pos,
			Held:  w.heldRefs(held),
			tok:   call.Pos(),
		})
	}
	held[key] = loHeld{class: class, pos: pos}
}

func classOrKey(class, key string) string {
	if class != "" {
		return class
	}
	return key
}

// recordCalls records every statically resolvable call syntactically inside
// n against the current held set.
func (w *loWalker) recordCalls(n ast.Node, held map[string]loHeld) {
	callsIn(n, func(call *ast.CallExpr) {
		w.recordCall(call, held)
	})
}

func (w *loWalker) recordCall(call *ast.CallExpr, held map[string]loHeld) {
	if _, _, _, ok := classifyLockCall(w.info, w.fset, call); ok {
		return // mutex bookkeeping, recorded by the walker itself
	}
	f := calleeFunc(w.info, call)
	if f == nil {
		return
	}
	if f.Name() == "Rank" && isInvariantsMutex(recvType(w.info, call)) {
		return // constructor bookkeeping, checked by scanRankCalls
	}
	w.sum.Calls = append(w.sum.Calls, callRec{
		Callee: f.FullName(),
		Pos:    shortPos(w.fset, call.Pos()),
		Held:   w.heldRefs(held),
		tok:    call.Pos(),
	})
}

// calleeFunc resolves a call to its static target: a package function, a
// qualified function, or a method on a concrete type. Interface methods,
// function values, builtins, and conversions return nil — the analyzer is
// honestly blind there.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			f, ok := s.Obj().(*types.Func)
			if !ok || isInterfaceMethod(f) {
				return nil
			}
			return f
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func cloneHeld(m map[string]loHeld) map[string]loHeld {
	out := make(map[string]loHeld, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b map[string]loHeld) map[string]loHeld {
	out := map[string]loHeld{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// The global analysis: fixpoint propagation, edges, cycles, ranks.

// lockEdge is one "From is held while To is acquired" observation. local
// edges originate in the package being analyzed and carry a reportable
// position; dep-derived edges participate in cycle detection but are
// reported by their own package.
type lockEdge struct {
	From, To string
	desc     string
	tok      token.Pos
	local    bool
}

func runLockorder(pass *Pass) {
	env := pass.locks
	if env == nil {
		return
	}
	for _, pos := range env.malformed {
		pass.Reportf(pos, "malformed //ldclint:lockrank directive: want //ldclint:lockrank <name> <rank>")
	}
	for _, u := range env.undeclared {
		pass.Reportf(u.pos, "mutex field %s has no //ldclint:lockrank annotation; rank it in DESIGN.md's lock-order catalog", u.key)
	}
	for _, m := range env.mismatches {
		pass.Reportf(m.pos, "Rank(%q, %d) disagrees with the field's //ldclint:lockrank %s %d",
			m.name, m.rank, m.class.Name, m.class.Rank)
	}
	for _, s := range env.selfLocks {
		pass.Reportf(s.pos, "%s locked again while already held (first Lock at %s): self-deadlock",
			env.display(s.class), s.firstPos)
	}
	edges := env.buildEdges()
	reportRankViolations(pass, env, edges)
	reportCycles(pass, env, edges)
}

// buildEdges propagates acquisitions over the call graph to a fixpoint and
// materializes the acquisition-order edges. Same-class edges are skipped:
// the *Locked unlock-and-relock pattern makes them routine, and the direct
// re-lock case is reported separately as a self-deadlock.
func (env *lockEnv) buildEdges() []lockEdge {
	ids := make([]string, 0, len(env.funcs))
	for id := range env.funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// may[f][class] = a representative witness chain by which f (possibly
	// transitively) acquires class. Chains are built once per (f, class), so
	// the fixpoint terminates, and the sorted iteration keeps them
	// deterministic.
	may := map[string]map[string][]string{}
	for _, id := range ids {
		m := map[string][]string{}
		for _, a := range env.funcs[id].Acquires {
			if _, ok := m[a.Class]; !ok {
				m[a.Class] = []string{fmt.Sprintf("%s acquired at %s", env.display(a.Class), a.Pos)}
			}
		}
		may[id] = m
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			for _, c := range env.funcs[id].Calls {
				callee := may[c.Callee]
				if callee == nil {
					continue
				}
				for _, class := range sortedKeys(callee) {
					if _, ok := may[id][class]; ok {
						continue
					}
					step := fmt.Sprintf("%s calls %s", c.Pos, c.Callee)
					may[id][class] = append([]string{step}, callee[class]...)
					changed = true
				}
			}
		}
	}

	var edges []lockEdge
	for _, id := range ids {
		f := env.funcs[id]
		local := env.ownIDs[id]
		for _, a := range f.Acquires {
			for _, h := range a.Held {
				if h.Class == a.Class {
					continue
				}
				edges = append(edges, lockEdge{
					From: h.Class, To: a.Class,
					desc: fmt.Sprintf("%s acquired at %s while %s held (since %s) in %s",
						env.display(a.Class), a.Pos, env.display(h.Class), h.Pos, id),
					tok:   a.tok,
					local: local,
				})
			}
		}
		for _, c := range f.Calls {
			if len(c.Held) == 0 {
				continue
			}
			callee := may[c.Callee]
			for _, class := range sortedKeys(callee) {
				for _, h := range c.Held {
					if h.Class == class {
						continue
					}
					edges = append(edges, lockEdge{
						From: h.Class, To: class,
						desc: fmt.Sprintf("%s held (since %s) when %s calls %s: %s",
							env.display(h.Class), h.Pos, id, c.Callee, strings.Join(callee[class], ", ")),
						tok:   c.tok,
						local: local,
					})
				}
			}
		}
	}
	return edges
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportRankViolations flags every locally witnessed edge whose destination
// rank does not strictly exceed its source rank, once per class pair at the
// earliest witness.
func reportRankViolations(pass *Pass, env *lockEnv, edges []lockEdge) {
	type pair struct{ from, to string }
	best := map[pair]*lockEdge{}
	var order []pair
	for i := range edges {
		e := &edges[i]
		if !e.local {
			continue
		}
		cf, ct := env.classes[e.From], env.classes[e.To]
		if cf == nil || ct == nil || !cf.Ranked || !ct.Ranked || ct.Rank > cf.Rank {
			continue
		}
		p := pair{e.From, e.To}
		if b, ok := best[p]; !ok || posLess(pass.Fset, e.tok, b.tok) {
			if !ok {
				order = append(order, p)
			}
			best[p] = e
		}
	}
	for _, p := range order {
		e := best[p]
		cf, ct := env.classes[e.From], env.classes[e.To]
		pass.Reportf(e.tok, "acquires %s (rank %d) while holding %s (rank %d); lock ranks must strictly increase inward: %s",
			ct.Name, ct.Rank, cf.Name, cf.Rank, e.desc)
	}
}

// reportCycles finds strongly connected components of the acquisition graph
// and reports each once — at the earliest local edge, with a witness chain
// walking the full cycle. Components with no local edge are left to the
// package that witnesses them.
func reportCycles(pass *Pass, env *lockEnv, edges []lockEdge) {
	adj := map[string][]*lockEdge{}
	nodes := map[string]bool{}
	for i := range edges {
		e := &edges[i]
		adj[e.From] = append(adj[e.From], e)
		nodes[e.From], nodes[e.To] = true, true
	}
	for _, scc := range stronglyConnected(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		var anchor *lockEdge
		for i := range edges {
			e := &edges[i]
			if e.local && in[e.From] && in[e.To] &&
				(anchor == nil || posLess(pass.Fset, e.tok, anchor.tok)) {
				anchor = e
			}
		}
		if anchor == nil {
			continue
		}
		path := cyclePath(adj, in, anchor.To, anchor.From)
		names := []string{env.display(anchor.From), env.display(anchor.To)}
		descs := []string{anchor.desc}
		for _, e := range path {
			names = append(names, env.display(e.To))
			descs = append(descs, e.desc)
		}
		pass.Reportf(anchor.tok, "lock-order cycle: %s: %s",
			strings.Join(names, " -> "), strings.Join(descs, "; "))
	}
}

// cyclePath finds a path from -> to within the component by BFS; inside a
// strongly connected component one always exists.
func cyclePath(adj map[string][]*lockEdge, in map[string]bool, from, to string) []*lockEdge {
	type state struct {
		node string
		path []*lockEdge
	}
	seen := map[string]bool{from: true}
	queue := []state{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node == to {
			return cur.path
		}
		for _, e := range adj[cur.node] {
			if !in[e.To] || seen[e.To] {
				continue
			}
			seen[e.To] = true
			next := append(append([]*lockEdge{}, cur.path...), e)
			queue = append(queue, state{node: e.To, path: next})
		}
	}
	return nil
}

// stronglyConnected is Tarjan's algorithm; components are returned with
// sorted members, in deterministic order.
func stronglyConnected(nodes map[string]bool, adj map[string][]*lockEdge) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.To
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range sorted {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return sccs
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
