package main

// mutexio encodes the PR-2 locking rule: fsync-class and network I/O must
// never run while a mutex is held. The write path appends to the WAL under
// db.mu but pays the fsync after releasing it; version.Set never holds
// set.mu across I/O; the serving layer never writes a connection under a
// server lock. This analyzer turns those review rules into machine checks.
//
// The check is intraprocedural and syntactic about control flow: within one
// function it tracks which mutex expressions ("db.mu", "s.logMu") are held
// at each statement — Lock()/RLock() opens a region, Unlock()/RUnlock()
// closes it, defer Unlock() holds to function exit, and branches merge
// conservatively (a mutex counts as held after an if/else only when it is
// held on every non-terminating path, so early-unlock error returns do not
// poison the main path). Function literals are analyzed as separate
// functions with no inherited lock state, since they typically run on other
// goroutines.
//
// Flagged calls while any mutex is held:
//
//   - (vfs.File) Write / ReadAt / Sync / Close, and every vfs.FS operation
//   - (wal.Writer) Sync — AddRecord/Flush under the lock is the engine's
//     deliberate append-under-mutex design and stays legal
//   - (sstable.Writer) Add / Finish
//   - (iosched.Limiter) Wait — a token wait can sleep for a full bucket
//     refill, and blocking a foreground lock on background pacing is
//     exactly the priority inversion the scheduler exists to prevent
//   - every method on a type from package net (Conn writes, Accept, ...)
//
// Intentional exceptions — version.Set.logMu is documented as held across
// MANIFEST I/O — carry a //ldclint:ignore mutexio <reason> directive.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var mutexioAnalyzer = &Analyzer{
	Name: "mutexio",
	Doc:  "reports filesystem sync and network I/O performed while a mutex is held",
	Run:  runMutexIO,
}

func runMutexIO(pass *Pass) {
	for _, fn := range funcsOf(pass.Files) {
		m := &mutexWalker{pass: pass}
		m.walk(fn.body.List, map[string]token.Pos{})
	}
}

type mutexWalker struct {
	pass *Pass
}

// lockMethod classifies a call as mutex bookkeeping: +1 Lock, -1 Unlock.
func (m *mutexWalker) lockMethod(call *ast.CallExpr) (key string, delta int, ok bool) {
	key, _, delta, ok = classifyLockCall(m.pass.Info, m.pass.Fset, call)
	return key, delta, ok
}

// classifyLockCall reports whether call is mutex bookkeeping: delta is +1
// for Lock/RLock and -1 for Unlock/RUnlock; key is the receiver's
// expression key and recv the receiver expression itself. Shared by mutexio
// (I/O-under-lock regions) and lockorder (acquisition summaries).
func classifyLockCall(info *types.Info, fset *token.FileSet, call *ast.CallExpr) (key string, recv ast.Expr, delta int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, 0, false
	}
	rt := recvType(info, call)
	if rt == nil || !isMutex(rt) {
		return "", nil, 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprKey(fset, sel.X), sel.X, +1, true
	case "Unlock", "RUnlock":
		return exprKey(fset, sel.X), sel.X, -1, true
	}
	return "", nil, 0, false
}

// isMutex covers the raw sync types and the invariants wrappers that
// replaced them on ranked locks — the wrappers must stay in the model or
// converting a field would silently disable both analyzers on it.
func isMutex(t types.Type) bool {
	return typeFromPkg(t, "sync", "Mutex") || typeFromPkg(t, "sync", "RWMutex") ||
		typeFromPkg(t, "invariants", "Mutex") || typeFromPkg(t, "invariants", "RWMutex")
}

// ioCall describes why a call is I/O, or returns "" if it is not.
func (m *mutexWalker) ioCall(call *ast.CallExpr) string {
	recv := recvType(m.pass.Info, call)
	if recv == nil {
		return ""
	}
	name := calleeName(call)
	n := namedOf(recv)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	pkg := n.Obj().Pkg().Path()
	typ := n.Obj().Name()
	switch {
	case pkgPathMatches(pkg, "vfs"):
		switch name {
		case "Write", "ReadAt", "Sync", "Close",
			"Create", "Open", "Remove", "Rename", "List", "MkdirAll", "Exists":
			return "(" + "vfs." + typ + ")." + name
		}
	case pkgPathMatches(pkg, "wal") && typ == "Writer" && name == "Sync":
		return "(wal.Writer).Sync"
	case pkgPathMatches(pkg, "sstable") && typ == "Writer" && (name == "Add" || name == "Finish"):
		return "(sstable.Writer)." + name
	case pkgPathMatches(pkg, "iosched") && typ == "Limiter" && name == "Wait":
		// Not device I/O itself, but it blocks for up to a bucket refill on
		// the background rate limiter — worse than an fsync under a hot lock.
		return "(iosched.Limiter).Wait"
	case pkg == "net":
		// Only the methods that actually touch the socket; Addr/LocalAddr/
		// SetDeadline-style bookkeeping is in-memory or non-blocking.
		switch name {
		case "Read", "Write", "Close", "Accept":
			return "(net." + typ + ")." + name
		}
	}
	return ""
}

// walk processes a statement list with the given held-mutex set (key →
// Lock position) and returns the set at the list's fall-through exit.
// The map is mutated in place; callers that need the entry set afterwards
// pass a clone.
func (m *mutexWalker) walk(stmts []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range stmts {
		held = m.walkStmt(s, held)
	}
	return held
}

func (m *mutexWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, delta, ok := m.lockMethod(call); ok {
				if delta > 0 {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return held
			}
		}
		m.checkCalls(s, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() pins the region to function exit; the mutex
		// stays in the held set. Deferred I/O runs at an unknowable point
		// in the defer stack, so only its argument expressions (evaluated
		// now) are checked.
		if key, delta, ok := m.lockMethod(s.Call); ok && delta < 0 {
			_ = key // held until exit: nothing to update
			return held
		}
		for _, arg := range s.Call.Args {
			m.checkCalls(arg, held)
		}

	case *ast.GoStmt:
		// The spawned call runs concurrently, outside this lock region;
		// only argument evaluation happens here.
		for _, arg := range s.Call.Args {
			m.checkCalls(arg, held)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			held = m.walkStmt(s.Init, held)
		}
		m.checkCalls(s.Cond, held)
		bodyHeld := m.walk(s.Body.List, clonePos(held))
		elseHeld := held
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseHeld = m.walk(e.List, clonePos(held))
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseHeld = m.walkStmt(e, clonePos(held))
			elseTerm = false
		}
		bodyTerm := terminates(s.Body.List)
		switch {
		case bodyTerm && elseTerm:
			return map[string]token.Pos{}
		case bodyTerm:
			return elseHeld
		case elseTerm:
			return bodyHeld
		default:
			return intersectPos(bodyHeld, elseHeld)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held = m.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			m.checkCalls(s.Cond, held)
		}
		body := m.walk(s.Body.List, clonePos(held))
		if s.Post != nil {
			m.walkStmt(s.Post, body)
		}
		// The loop may run zero times; only mutexes held on both the skip
		// and the iterate paths survive.
		return intersectPos(held, body)

	case *ast.RangeStmt:
		m.checkCalls(s.X, held)
		body := m.walk(s.Body.List, clonePos(held))
		return intersectPos(held, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return m.walkCases(s, held)

	case *ast.BlockStmt:
		return m.walk(s.List, held)

	case *ast.LabeledStmt:
		return m.walkStmt(s.Stmt, held)

	default:
		m.checkCalls(s, held)
	}
	return held
}

// walkCases merges switch/select branches the same way if/else merges.
func (m *mutexWalker) walkCases(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = m.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			m.checkCalls(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = m.walkStmt(s.Init, held)
		}
		m.checkCalls(s.Assign, held)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var exits []map[string]token.Pos
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				m.checkCalls(e, held)
			}
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				m.walkStmt(c.Comm, clonePos(held))
			} else {
				hasDefault = true
			}
			list = c.Body
		}
		if terminates(list) {
			m.walk(list, clonePos(held))
			continue
		}
		exits = append(exits, m.walk(list, clonePos(held)))
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	if len(exits) == 0 {
		return map[string]token.Pos{}
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectPos(out, e)
	}
	return out
}

// checkCalls flags I/O calls syntactically inside n while held is nonempty.
func (m *mutexWalker) checkCalls(n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	callsIn(n, func(call *ast.CallExpr) {
		what := m.ioCall(call)
		if what == "" {
			return
		}
		// One report per call; pick the lexically smallest key so the
		// message is deterministic when several mutexes are held.
		var key string
		for k := range held {
			if key == "" || k < key {
				key = k
			}
		}
		m.pass.Reportf(call.Pos(),
			"call to %s while %q is held (Lock at %s); fsync and I/O must run outside the lock",
			what, key, m.pass.Fset.Position(held[key]))
	})
}

func clonePos(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectPos(a, b map[string]token.Pos) map[string]token.Pos {
	out := map[string]token.Pos{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
