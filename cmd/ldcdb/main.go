// Command ldcdb is a small operational CLI for LDC databases: get/put/
// delete/scan against a store directory, plus inspection of the tree shape
// and engine statistics, and a load generator for quick hands-on testing.
//
// Usage:
//
//	ldcdb -db DIR [-policy udc|ldc|tiered] <command> [args]
//
// Commands:
//
//	put <key> <value>      insert or update a key
//	get <key>              print a key's value
//	delete <key>           delete a key
//	scan <start> [n]       print up to n pairs from start (default 10)
//	stats                  print engine statistics
//	profile                print the tree shape (files/bytes per level,
//	                       frozen region, slice threshold)
//	fill <n> [valueSize]   insert n random keys (default 100-byte values)
//	compact                run compaction until quiescent
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"repro/ldc"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ldcdb: "+format+"\n", args...)
	os.Exit(1)
}

func parsePolicy(s string) ldc.Policy {
	switch s {
	case "udc":
		return ldc.PolicyUDC
	case "ldc":
		return ldc.PolicyLDC
	case "tiered":
		return ldc.PolicyTiered
	}
	fail("unknown policy %q (want udc, ldc, or tiered)", s)
	panic("unreachable")
}

func main() {
	var (
		dir    = flag.String("db", "", "database directory (required)")
		policy = flag.String("policy", "ldc", "compaction policy: udc, ldc, tiered")
	)
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	db, err := ldc.Open(*dir, &ldc.Options{Policy: parsePolicy(*policy)})
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	args := flag.Args()
	switch cmd := args[0]; cmd {
	case "put":
		if len(args) != 3 {
			fail("usage: put <key> <value>")
		}
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fail("put: %v", err)
		}

	case "get":
		if len(args) != 2 {
			fail("usage: get <key>")
		}
		v, err := db.Get([]byte(args[1]))
		if err != nil {
			fail("get: %v", err)
		}
		fmt.Printf("%s\n", v)

	case "delete":
		if len(args) != 2 {
			fail("usage: delete <key>")
		}
		if err := db.Delete([]byte(args[1])); err != nil {
			fail("delete: %v", err)
		}

	case "scan":
		if len(args) < 2 {
			fail("usage: scan <start> [n]")
		}
		n := 10
		if len(args) == 3 {
			n, err = strconv.Atoi(args[2])
			if err != nil {
				fail("bad count %q", args[2])
			}
		}
		pairs, err := db.Scan([]byte(args[1]), n)
		if err != nil {
			fail("scan: %v", err)
		}
		for _, kv := range pairs {
			fmt.Printf("%s = %s\n", kv.Key, kv.Value)
		}

	case "stats":
		s := db.Stats()
		fmt.Println(s.String())
		fmt.Printf("write amplification: %.2f\n", s.WriteAmplification())

	case "profile":
		p := db.CurrentProfile()
		for _, lp := range p.Levels {
			if lp.Files == 0 {
				continue
			}
			fmt.Printf("L%d: %4d files  %8d KB  %d slices\n",
				lp.Level, lp.Files, lp.Bytes>>10, lp.Slices)
		}
		fmt.Printf("frozen region: %d files, %d KB\n", p.FrozenFiles, p.FrozenBytes>>10)
		fmt.Printf("SliceLink threshold: %d\n", p.SliceThreshold)

	case "fill":
		if len(args) < 2 {
			fail("usage: fill <n> [valueSize]")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fail("bad count %q", args[1])
		}
		valueSize := 100
		if len(args) == 3 {
			if valueSize, err = strconv.Atoi(args[2]); err != nil {
				fail("bad value size %q", args[2])
			}
		}
		rng := rand.New(rand.NewSource(1))
		val := make([]byte, valueSize)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("fill-%012d", rng.Intn(10*n))
			if err := db.Put([]byte(key), val); err != nil {
				fail("fill: %v", err)
			}
		}
		fmt.Printf("inserted %d keys\n", n)

	case "compact":
		if err := db.CompactRange(); err != nil {
			fail("compact: %v", err)
		}
		fmt.Println("compacted")

	default:
		fail("unknown command %q", cmd)
	}
}
