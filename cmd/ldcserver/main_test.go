package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
)

// TestServerBinarySmoke exercises the real binary end to end: build it,
// start it on an ephemeral port against a fresh directory, speak RESP to
// it, then SIGTERM it and require a clean drain (exit 0). This is the
// `make server-smoke` gate.
func TestServerBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ldcserver")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-db", filepath.Join(dir, "db"), "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// The binary prints "listening on ADDR" once bound.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("read banner: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "listening on "))
	if addr == line {
		t.Fatalf("unexpected banner %q", line)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial %s: %v", addr, err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Set([]byte("smoke"), []byte("ok")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, err := c.Get([]byte("smoke")); err != nil || string(v) != "ok" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	info, err := c.Info("engine")
	if err != nil || !strings.Contains(info, "write_groups_total:") {
		t.Fatalf("Info = %v, %v", info, err)
	}

	// SIGTERM must drain gracefully: finish the connection, close the DB,
	// exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
