// Command ldcserver serves an LDC database over TCP speaking a RESP2
// subset, so stock Redis tooling works against the engine:
//
//	ldcserver -db /tmp/ldc -addr 127.0.0.1:6380
//	redis-cli -p 6380 set k v
//	redis-cli -p 6380 get k
//	redis-benchmark -p 6380 -t set,get -P 16
//
// The server prints "listening on ADDR" once bound (useful with -addr
// ":0"), and drains gracefully on SIGINT/SIGTERM: it stops accepting,
// finishes commands already received, then closes the database.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/ldc"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ldcserver: "+format+"\n", args...)
	os.Exit(1)
}

func parsePolicy(s string) ldc.Policy {
	switch s {
	case "udc":
		return ldc.PolicyUDC
	case "ldc":
		return ldc.PolicyLDC
	case "tiered":
		return ldc.PolicyTiered
	}
	fail("unknown policy %q (want udc, ldc, or tiered)", s)
	panic("unreachable")
}

func main() {
	var (
		dir      = flag.String("db", "", "database directory (required)")
		addr     = flag.String("addr", "127.0.0.1:6380", "TCP listen address (use :0 for an ephemeral port)")
		policy   = flag.String("policy", "ldc", "compaction policy: udc, ldc, tiered")
		sync     = flag.Bool("sync", false, "fsync the WAL on every commit")
		shards   = flag.Int("shards", 0, "hash-partitioned engine shards (0 = adopt existing layout or single engine; rounds up to a power of two)")
		maxConns = flag.Int("maxconns", 1024, "maximum simultaneous connections")
		idle     = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle for this long")
		drain    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown wait before force-closing connections")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	db, err := ldc.Open(*dir, &ldc.Options{
		Policy: parsePolicy(*policy),
		Sync:   *sync,
		Shards: *shards,
	})
	if err != nil {
		fail("open: %v", err)
	}

	srv, err := server.New(db, server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
	})
	if err != nil {
		db.Close()
		fail("config: %v", err)
	}

	// Drain on SIGINT/SIGTERM; Shutdown closes the DB when the drain ends.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "ldcserver: %v: draining\n", sig)
		done <- srv.Shutdown()
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		fail("listen: %v", err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && err != server.ErrServerClosed {
		fail("serve: %v", err)
	}
	if err := <-done; err != nil {
		fail("shutdown: %v", err)
	}
}
