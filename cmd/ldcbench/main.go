// Command ldcbench regenerates the paper's tables and figures on this
// repository's store and SSD simulator.
//
// Usage:
//
//	ldcbench [flags] <experiment>...
//
// Experiments: table1 fig1 fig7 fig8 fig9 fig10a fig10b fig10c fig11
// fig12a fig12b fig12c fig13 fig14 fig15 format, or "all".
//
// Flags scale the run; defaults regenerate every shape in a few minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
)

type experiment struct {
	name string
	desc string
	run  func(harness.Config, io.Writer) error
}

func wrap[T interface{ Print(io.Writer) }](f func(harness.Config) (T, error)) func(harness.Config, io.Writer) error {
	return func(cfg harness.Config, out io.Writer) error {
		r, err := f(cfg)
		if err != nil {
			return err
		}
		r.Print(out)
		return nil
	}
}

var experiments = []experiment{
	{"table1", "time breakdown of an insert-only run (paper Table I)", wrap(harness.RunTable1)},
	{"fig1", "latency fluctuation of the UDC baseline (paper Fig 1)", wrap(harness.RunFig1)},
	{"fig7", "fan-out tuning alone does not help UDC (paper Fig 7)", wrap(harness.RunFig7)},
	{"fig8", "P90-P99.99 tail latency, UDC vs LDC (paper Fig 8)", wrap(harness.RunFig8)},
	{"fig9", "average latency per workload (paper Fig 9)", wrap(harness.RunFig9)},
	{"fig10a", "throughput, GET workloads (paper Fig 10a)", wrap(harness.RunFig10a)},
	{"fig10b", "throughput, SCAN workloads (paper Fig 10b)", wrap(harness.RunFig10b)},
	{"fig10c", "compaction I/O volume (paper Fig 10c)", wrap(harness.RunFig10c)},
	{"fig11", "uniform vs Zipf distributions (paper Fig 11)", wrap(harness.RunFig11)},
	{"fig12a", "SliceLink threshold sweep (paper Fig 12a,d)", wrap(harness.RunFig12a)},
	{"fig12b", "fan-out sweep, both policies (paper Fig 12b,e)", wrap(harness.RunFig12b)},
	{"fig12c", "Bloom filter size sweep (paper Fig 12c,f)", wrap(harness.RunFig12c)},
	{"fig13", "Bloom bits/key vs data-block reads (paper Fig 13)", wrap(harness.RunFig13)},
	{"fig14", "scalability with request count (paper Fig 14)", wrap(harness.RunFig14)},
	{"fig15", "space efficiency (paper Fig 15)", wrap(harness.RunFig15)},
	{"format", "on-disk format sweep: raw vs flate vs lz4", wrap(harness.RunFormat)},
	{"brownout", "sustained load under compaction backlog, I/O limiter on vs off", runBrownout},
	{"blob", "value-size sweep: write amplification, value separation off vs on", runBlob},
}

// Gated-experiment flag values, set in main before experiments run. The
// -json path is shared: brownout and blob each record their own comparison,
// so run them in separate invocations when recording (the Makefile does).
var (
	jsonPath       string
	brownoutBudget float64
	blobGain       float64
)

// runBrownout is wired by hand instead of through wrap: it optionally
// records its result as JSON and enforces the CI tail budget.
func runBrownout(cfg harness.Config, out io.Writer) error {
	r, err := harness.RunBrownout(cfg)
	if err != nil {
		return err
	}
	r.Print(out)
	if jsonPath != "" {
		if err := r.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return r.CheckBudget(brownoutBudget)
}

// runBlob mirrors runBrownout: record the sweep, then enforce the CI gate
// on the separation benefit at large values.
func runBlob(cfg harness.Config, out io.Writer) error {
	r, err := harness.RunBlob(cfg)
	if err != nil {
		return err
	}
	r.Print(out)
	if jsonPath != "" {
		if err := r.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return r.CheckGain(blobGain)
}

func main() {
	var (
		ops      = flag.Int64("ops", 0, "measured requests per run (0 = preset)")
		keySpace = flag.Int64("keyspace", 0, "distinct keys (0 = preset)")
		fanout   = flag.Int("fanout", 0, "LSM-tree fan-out k (0 = preset)")
		scale    = flag.Float64("devscale", -1, "SSD latency scale (0 disables, <0 = preset)")
		quick    = flag.Bool("quick", false, "use the sub-second smoke preset")
		adaptive = flag.Bool("adaptive", false, "enable the self-adaptive SliceLink threshold")
		seed     = flag.Int64("seed", 0, "workload seed (0 = preset)")
		clients  = flag.Int("clients", 0, "concurrent workload clients (0 = preset)")
	)
	flag.StringVar(&jsonPath, "json", "", "record the experiment's comparison to this JSON file (brownout, blob)")
	flag.Float64Var(&brownoutBudget, "tailbudget", 0, "fail if limiter-on P99.9 exceeds this multiple of limiter-off (0 = no gate)")
	flag.Float64Var(&blobGain, "blobgain", 0, "fail if separation cuts compaction write-amp by less than this factor at 4KiB+ values (0 = no gate)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldcbench [flags] <experiment>...\n\nexperiments:\n")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "  %-8s run every experiment\n\nflags:\n", "all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := harness.Default()
	if *quick {
		cfg = harness.Quick()
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *keySpace > 0 {
		cfg.KeySpace = *keySpace
	}
	if *fanout > 0 {
		cfg.Fanout = *fanout
		cfg.SliceThreshold = *fanout
	}
	if *scale >= 0 {
		cfg.Device.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	cfg.AdaptiveThreshold = *adaptive

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = names[:0]
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	for _, name := range names {
		var found *experiment
		for i := range experiments {
			if experiments[i].name == name {
				found = &experiments[i]
				break
			}
		}
		if found == nil {
			fmt.Fprintf(os.Stderr, "ldcbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s ==\n", found.name, found.desc)
		start := time.Now()
		if err := found.run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ldcbench: %s: %v\n", found.name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", found.name, time.Since(start).Round(time.Millisecond))
	}
}
