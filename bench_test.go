// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per exhibit) plus ablation benches for
// the design choices called out in DESIGN.md. Each benchmark performs the
// complete experiment per iteration and reports the headline quantity the
// paper's exhibit shows via b.ReportMetric, so `go test -bench=.` produces
// the whole reproduction in one pass. EXPERIMENTS.md records paper-vs-
// measured for each.
//
// The benchmarks run at a reduced scale (bench preset below) so the whole
// suite completes in minutes; `cmd/ldcbench` runs the same experiments at
// the larger default scale.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/compaction"
	"repro/internal/harness"
	"repro/internal/ycsb"
)

// benchConfig is the scale used by the benchmark suite: large enough for a
// three-level tree with real compaction pressure, small enough that every
// exhibit regenerates in minutes.
func benchConfig() harness.Config {
	cfg := harness.Default()
	cfg.Ops = 30_000
	cfg.KeySpace = 15_000
	return cfg
}

// BenchmarkTable1Profile regenerates Table I: the share of run time spent
// in compaction work vs the device vs the user write path.
func BenchmarkTable1Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunTable1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Module == "DoCompactionWork" {
				b.ReportMetric(row.Percent, "compaction-%")
			}
		}
	}
}

// BenchmarkFig1Fluctuation regenerates Fig 1: the per-slot mean latency
// fluctuation factor of the UDC baseline (paper: 49.13×).
func BenchmarkFig1Fluctuation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Fluctuation, "fluctuation-x")
	}
}

// BenchmarkFig7FanoutUDC regenerates Fig 7: sweeping UDC's fan-out cannot
// both cut amplification and raise throughput.
func BenchmarkFig7FanoutUDC(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 10_000
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best, worst := r.Rows[0].Throughput, r.Rows[0].Throughput
		for _, row := range r.Rows {
			if row.Throughput > best {
				best = row.Throughput
			}
			if row.Throughput < worst {
				worst = row.Throughput
			}
		}
		b.ReportMetric(best/worst, "best/worst-x")
	}
}

// BenchmarkFig8TailLatency regenerates Fig 8: UDC's P99.9 over LDC's
// (paper: 2.62×).
func BenchmarkFig8TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.P999Ratio, "P99.9-UDC/LDC-x")
	}
}

// BenchmarkFig9AvgLatency regenerates Fig 9: average latency per workload;
// the reported metric is UDC's mean over LDC's on the write-heavy mix
// (paper: latency drops to 43.3%).
func BenchmarkFig9AvgLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var udc, ldcMean float64
		for _, row := range r.Rows {
			if row.Workload == "WH" {
				if row.Policy == "UDC" {
					udc = float64(row.Mean)
				} else {
					ldcMean = float64(row.Mean)
				}
			}
		}
		if ldcMean > 0 {
			b.ReportMetric(udc/ldcMean, "WH-mean-UDC/LDC-x")
		}
	}
}

func reportImprovement(b *testing.B, r *harness.ThroughputResult, workload, metric string) {
	b.Helper()
	if imp, ok := r.Improvements()[workload]; ok {
		b.ReportMetric(imp*100, metric)
	}
}

// BenchmarkFig10aThroughputGet regenerates Fig 10(a): throughput across
// the GET-family workloads (paper: LDC +16%…+80%).
func BenchmarkFig10aThroughputGet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig10a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportImprovement(b, r, "WH", "WH-LDC-gain-%")
		reportImprovement(b, r, "RWB", "RWB-LDC-gain-%")
	}
}

// BenchmarkFig10bThroughputScan regenerates Fig 10(b): throughput across
// the SCAN-family workloads (paper: LDC +49%…+86%).
func BenchmarkFig10bThroughputScan(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 8_000 // scans touch 100 pairs each
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig10b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportImprovement(b, r, "SCN-RWB", "SCN-RWB-LDC-gain-%")
	}
}

// BenchmarkFig10cCompactionIO regenerates Fig 10(c): compaction I/O volume
// (paper: LDC ≈ half of UDC). Reports UDC/LDC total compaction I/O on WH.
func BenchmarkFig10cCompactionIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig10c(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var udc, ldcIO float64
		for _, row := range r.Rows {
			if row.Workload == "WH" {
				if row.Policy == "UDC" {
					udc = row.ReadMB + row.WriteMB
				} else {
					ldcIO = row.ReadMB + row.WriteMB
				}
			}
		}
		if ldcIO > 0 {
			b.ReportMetric(udc/ldcIO, "WH-compIO-UDC/LDC-x")
		}
	}
}

// BenchmarkFig11Zipf regenerates Fig 11: LDC's advantage grows with the
// Zipf constant (paper: uniform +38.7% → Zipf5 +67.3%).
func BenchmarkFig11Zipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportImprovement(b, r, "Uniform", "uniform-LDC-gain-%")
		reportImprovement(b, r, "Zipf5", "zipf5-LDC-gain-%")
	}
}

// BenchmarkFig12SliceLink regenerates Fig 12(a,d): the SliceLink threshold
// sweep; reports the best threshold found (paper: best T_s ≈ fan-out).
func BenchmarkFig12SliceLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig12a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		best := r.Rows[0]
		for _, row := range r.Rows {
			if row.Throughput > best.Throughput {
				best = row
			}
		}
		b.ReportMetric(float64(best.Threshold), "best-Ts")
	}
}

// BenchmarkFig12Fanout regenerates Fig 12(b,e): the fan-out sweep for both
// policies; reports LDC's gain at the largest fan-out, where the paper
// finds its biggest advantage (+187.9%).
func BenchmarkFig12Fanout(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 8_000
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig12b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var udc, ldcThr float64
		maxK := 0
		for _, row := range r.Rows {
			if row.Fanout > maxK {
				maxK = row.Fanout
			}
		}
		for _, row := range r.Rows {
			if row.Fanout == maxK {
				if row.Policy == "UDC" {
					udc = row.Throughput
				} else {
					ldcThr = row.Throughput
				}
			}
		}
		if udc > 0 {
			b.ReportMetric((ldcThr/udc-1)*100, "maxK-LDC-gain-%")
		}
	}
}

// BenchmarkFig12Bloom regenerates Fig 12(c,f): throughput is insensitive
// to Bloom sizes in the 10–200 bits/key range; reports max/min throughput
// across the sweep for LDC (paper: flat, ≈1).
func BenchmarkFig12Bloom(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 8_000
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig12c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		min, max := 0.0, 0.0
		for _, row := range r.Rows {
			if row.Policy != "LDC" {
				continue
			}
			if min == 0 || row.Throughput < min {
				min = row.Throughput
			}
			if row.Throughput > max {
				max = row.Throughput
			}
		}
		if min > 0 {
			b.ReportMetric(max/min, "LDC-max/min-x")
		}
	}
}

// BenchmarkFig13BloomReads regenerates Fig 13: data-block reads fall as
// bits/key rise and saturate around 16; reports reads at 2 bits over reads
// at 16 bits.
func BenchmarkFig13BloomReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var at2, at16 float64
		for _, row := range r.Rows {
			switch row.BitsPerKey {
			case 2:
				at2 = float64(row.BlockReads)
			case 16:
				at16 = float64(row.BlockReads)
			}
		}
		if at16 > 0 {
			b.ReportMetric(at2/at16, "reads-2b/16b-x")
		}
	}
}

// BenchmarkFig14Scalability regenerates Fig 14: LDC's throughput advantage
// holds across request counts (paper: +39%…+65%); reports the minimum gain
// across the sweep.
func BenchmarkFig14Scalability(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 8_000
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		udc := map[int64]float64{}
		ldcThr := map[int64]float64{}
		for _, row := range r.Rows {
			if row.Policy == "UDC" {
				udc[row.Ops] = row.Throughput
			} else {
				ldcThr[row.Ops] = row.Throughput
			}
		}
		minGain := 1e9
		for ops, u := range udc {
			if l, ok := ldcThr[ops]; ok && u > 0 {
				if g := (l/u - 1) * 100; g < minGain {
					minGain = g
				}
			}
		}
		b.ReportMetric(minGain, "min-LDC-gain-%")
	}
}

// BenchmarkFig15Space regenerates Fig 15: LDC's extra space over UDC
// (paper: 3.37%…10.0%); reports the maximum overhead across the sweep.
func BenchmarkFig15Space(b *testing.B) {
	cfg := benchConfig()
	cfg.Ops = 8_000
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		maxOv := -1e9
		for _, ov := range r.Overheads() {
			if ov*100 > maxOv {
				maxOv = ov * 100
			}
		}
		b.ReportMetric(maxOv, "max-space-overhead-%")
	}
}

// ---------------------------------------------------------------------------
// Concurrent compaction engine

// BenchmarkParallelCompactionFill measures the concurrent compaction engine:
// a write-only fill + overwrite under LDC at CompactionParallelism 1 (the
// serial baseline) vs 4, reporting throughput, p99 write latency, and total
// write-stall time. BENCH_parallel_compaction.json records the baseline.
func BenchmarkParallelCompactionFill(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.CompactionParallelism = par
				env, err := harness.NewEnv(cfg, compaction.LDC)
				if err != nil {
					b.Fatal(err)
				}
				w := ycsb.WO(cfg.Ops, cfg.KeySpace)
				w.ValueSize = cfg.ValueSize
				if err := env.Load(w); err != nil {
					env.Close()
					b.Fatal(err)
				}
				r, err := env.Run(w)
				if err != nil {
					env.Close()
					b.Fatal(err)
				}
				s := env.DB.Stats()
				b.ReportMetric(r.Throughput, "ops/s")
				b.ReportMetric(float64(r.WriteHist.Percentile(99).Microseconds()), "p99-write-µs")
				b.ReportMetric(float64(s.StallTime.Milliseconds()), "stall-ms")
				b.ReportMetric(float64(s.MaxConcurrentCompactions), "max-concurrent")
				env.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md)

func runRWB(b *testing.B, cfg harness.Config, policy compaction.Policy) (thr float64, compIO float64) {
	b.Helper()
	env, err := harness.NewEnv(cfg, policy)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	w := ycsb.RWB(cfg.Ops, cfg.KeySpace)
	w.ValueSize = cfg.ValueSize
	if err := env.Load(w); err != nil {
		b.Fatal(err)
	}
	r, err := env.Run(w)
	if err != nil {
		b.Fatal(err)
	}
	s := env.DB.Stats()
	return r.Throughput, float64(s.CompactionReadBytes+s.CompactionWriteBytes) / (1 << 20)
}

// BenchmarkAblationTrivialMove compares LDC with and without the
// metadata-only move optimization.
func BenchmarkAblationTrivialMove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, _ := runRWB(b, benchConfig(), compaction.LDC)
		cfg := benchConfig()
		cfg.DisableTrivialMove = true
		off, _ := runRWB(b, cfg, compaction.LDC)
		if off > 0 {
			b.ReportMetric((on/off-1)*100, "move-gain-%")
		}
	}
}

// BenchmarkAblationAdaptiveThreshold compares the fixed T_s against the
// self-adaptive controller on a balanced workload.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixed, _ := runRWB(b, benchConfig(), compaction.LDC)
		cfg := benchConfig()
		cfg.AdaptiveThreshold = true
		adaptive, _ := runRWB(b, cfg, compaction.LDC)
		if fixed > 0 {
			b.ReportMetric((adaptive/fixed-1)*100, "adaptive-gain-%")
		}
	}
}

// BenchmarkAblationBloomFilters compares LDC with and without Bloom
// filters — without them every slice probe costs device reads, the read
// cost Theorem 3.2 warns about.
func BenchmarkAblationBloomFilters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, _ := runRWB(b, benchConfig(), compaction.LDC)
		cfg := benchConfig()
		cfg.BloomBitsPerKey = -1 // disabled
		off, _ := runRWB(b, cfg, compaction.LDC)
		if off > 0 {
			b.ReportMetric((on/off-1)*100, "bloom-gain-%")
		}
	}
}

// BenchmarkFormat regenerates the on-disk format sweep (raw vs flate vs
// lz4 at 100B and 1KiB half-redundant values; BENCH_format.json records a
// full run): fill throughput, scan throughput, on-disk bytes per key, and
// write-side compression ratio per codec.
func BenchmarkFormat(b *testing.B) {
	// The sweep runs 6 full stores (3 codecs × 2 value sizes); a quarter of
	// the usual scale keeps the race-checked ci smoke to tens of seconds
	// while still reaching multi-level trees. BENCH_format.json is measured
	// at the full default scale via `ldcbench format`.
	cfg := benchConfig()
	cfg.Ops /= 4
	cfg.KeySpace /= 4
	for i := 0; i < b.N; i++ {
		r, err := harness.RunFormat(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var raw, lz4 harness.FormatRow
		for _, row := range r.Rows {
			if row.ValueSize < 1024 {
				continue
			}
			switch row.Codec {
			case "none":
				raw = row
			case "lz4":
				lz4 = row
			}
		}
		if raw.FillOpsPerSec > 0 {
			b.ReportMetric(lz4.FillOpsPerSec/raw.FillOpsPerSec, "lz4-fill-x")
		}
		if raw.OnDiskBytesPerKey > 0 {
			b.ReportMetric(100*(1-lz4.OnDiskBytesPerKey/raw.OnDiskBytesPerKey), "lz4-disk-saved-%")
		}
		b.ReportMetric(lz4.CompressionRatio, "lz4-ratio-x")
	}
}
